package tsr

import (
	"context"
	"crypto/sha256"
	"encoding/base64"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"sync"
	"time"

	"tsr/internal/index"
	"tsr/internal/store"
	"tsr/internal/trace"
)

// HTTP wire headers for the signed index.
const (
	headerKeyName   = "X-Tsr-Key-Name"
	headerSignature = "X-Tsr-Signature"
)

// maxPolicyBytes caps POST /policies request bodies; larger bodies are
// refused with 413 rather than silently truncated.
const maxPolicyBytes = 10 << 20

// maxIngestBytes caps POST /repos/{id}/ingest request bodies.
const maxIngestBytes = 64 << 20

// Handler exposes the Service as the REST API of §5.2:
//
//	POST /policies                  deploy a policy (optional ?id= for
//	                                router-chosen placement), returns
//	                                repo id + public key + attestation
//	                                report
//	POST /repos/{id}/refresh        pull upstream and re-sanitize
//	POST /repos/{id}/ingest         bulk-register original packages
//	                                (chunk-framed body, crash-safe)
//	GET  /repos/{id}/index          the signed metadata index
//	GET  /repos/{id}/packages/{pkg} a sanitized package
//	GET  /repos/{id}/rejected       rejected packages and reasons
//	GET  /repos/{id}/findings       security findings
//	GET  /repos/{id}/stats          cumulative refresh/cache counters
//	GET  /stats                     service-wide: per-tenant counters,
//	                                totals, scheduler snapshot
//	GET  /healthz                   liveness
func Handler(s *Service) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /policies", func(w http.ResponseWriter, r *http.Request) {
		// MaxBytesReader (unlike a silent LimitReader) fails the read
		// when the body exceeds the cap, instead of truncating the
		// policy and parsing the prefix as if it were complete.
		//lint:allow streamserve policy upload, bounded by maxPolicyBytes; not a package body
		body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxPolicyBytes))
		if err != nil {
			var tooBig *http.MaxBytesError
			if errors.As(err, &tooBig) {
				httpError(w, http.StatusRequestEntityTooLarge,
					fmt.Errorf("policy body exceeds %d bytes", tooBig.Limit))
				return
			}
			httpError(w, http.StatusBadRequest, err)
			return
		}
		id, pub, report, err := s.DeployPolicyID(body, r.URL.Query().Get("id"))
		if err != nil {
			httpError(w, http.StatusBadRequest, err)
			return
		}
		writeJSON(w, map[string]any{
			"repository_id":       id,
			"public_key":          string(pub),
			"enclave_measurement": hex.EncodeToString(report.Measurement[:]),
			"report_data":         hex.EncodeToString(report.ReportData[:]),
			"report_signature":    base64.StdEncoding.EncodeToString(report.Sig),
			"report_key_name":     report.KeyName,
		})
	})
	mux.HandleFunc("POST /repos/{id}/refresh", func(w http.ResponseWriter, r *http.Request) {
		repo, err := s.Repo(r.PathValue("id"))
		if err != nil {
			httpError(w, http.StatusNotFound, err)
			return
		}
		stats, err := repo.RefreshCtx(r.Context())
		if err != nil {
			// 502 is reserved for upstream mirror/quorum failures;
			// local validation/seal/plan errors map to 500 and a
			// replay-detected refusal surfaces the rollback sentinel.
			httpError(w, statusFor(err), err)
			return
		}
		writeJSON(w, map[string]any{
			"sanitized":         stats.Sanitized,
			"rejected":          stats.Rejected,
			"downloaded":        stats.Downloaded,
			"unchanged":         stats.Unchanged,
			"cache_hits":        stats.CacheHits,
			"workers":           stats.Workers,
			"errors":            stats.Errors,
			"quorum_latency_ms": stats.QuorumLatency.Milliseconds(),
			"mirrors_contacted": stats.MirrorsContacted,
		})
	})
	mux.HandleFunc("POST /repos/{id}/ingest", func(w http.ResponseWriter, r *http.Request) {
		repo, err := s.Repo(r.PathValue("id"))
		if err != nil {
			httpError(w, http.StatusNotFound, err)
			return
		}
		// The body is a sequence of chunk-framed packages (the same
		// length-prefixed framing the sealed state uses): 8-byte
		// big-endian length, then the raw package bytes, repeated.
		//lint:allow streamserve bulk ingest upload, bounded by maxIngestBytes; not a package-serving body
		body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxIngestBytes))
		if err != nil {
			var tooBig *http.MaxBytesError
			if errors.As(err, &tooBig) {
				httpError(w, http.StatusRequestEntityTooLarge,
					fmt.Errorf("ingest body exceeds %d bytes", tooBig.Limit))
				return
			}
			httpError(w, http.StatusBadRequest, err)
			return
		}
		raws, err := DecodeIngestBody(body)
		if err != nil {
			httpError(w, http.StatusBadRequest, err)
			return
		}
		stats, err := repo.RegisterPackages(r.Context(), raws)
		if err != nil {
			httpError(w, statusFor(err), err)
			return
		}
		writeJSON(w, stats)
	})
	mux.HandleFunc("GET /repos/{id}/stats", func(w http.ResponseWriter, r *http.Request) {
		repo, err := s.Repo(r.PathValue("id"))
		if err != nil {
			httpError(w, http.StatusNotFound, err)
			return
		}
		writeJSON(w, repo.CacheStats())
	})
	mux.HandleFunc("GET /stats", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, s.Stats())
	})
	mux.HandleFunc("GET /repos/{id}/index", func(w http.ResponseWriter, r *http.Request) {
		repo, err := s.Repo(r.PathValue("id"))
		if err != nil {
			httpError(w, http.StatusNotFound, err)
			return
		}
		// The ETag is the digest of the signed index: it changes exactly
		// when a refresh publishes a new snapshot, so clients revalidate
		// with If-None-Match instead of re-downloading the full index. A
		// match is answered from the tag alone — the index body is never
		// even cloned.
		etag, err := repo.IndexETag()
		if err != nil {
			httpError(w, statusFor(err), err)
			return
		}
		w.Header().Set("Cache-Control", "no-cache")
		if ETagMatch(r.Header.Get("If-None-Match"), etag) {
			repo.noteIndexNotModified()
			w.Header().Set("ETag", etag)
			w.WriteHeader(http.StatusNotModified)
			return
		}
		signed, etag, err := repo.FetchIndexTaggedCtx(r.Context())
		if err != nil {
			httpError(w, statusFor(err), err)
			return
		}
		w.Header().Set("ETag", etag)
		w.Header().Set(headerKeyName, signed.KeyName)
		w.Header().Set(headerSignature, base64.StdEncoding.EncodeToString(signed.Sig))
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		// The canonical signed text stays what the ETag and signature
		// cover; gzip is negotiated transfer encoding on top of it.
		WriteNegotiated(w, r, signed.Raw)
	})
	mux.HandleFunc("GET /repos/{id}/index/delta", func(w http.ResponseWriter, r *http.Request) {
		repo, err := s.Repo(r.PathValue("id"))
		if err != nil {
			httpError(w, http.StatusNotFound, err)
			return
		}
		since := r.URL.Query().Get("since")
		if since == "" {
			httpError(w, http.StatusBadRequest, errors.New("missing since=<etag> query parameter"))
			return
		}
		d, err := repo.FetchIndexDeltaCtx(r.Context(), since)
		if errors.Is(err, index.ErrDeltaUnchanged) {
			// The base generation IS the current one: nothing to send.
			w.Header().Set("ETag", since)
			w.Header().Set("Cache-Control", "no-cache")
			w.WriteHeader(http.StatusNotModified)
			return
		}
		if err != nil {
			// index.ErrNoDelta maps to 404: the caller falls back to a
			// full index fetch.
			httpError(w, statusFor(err), err)
			return
		}
		w.Header().Set("ETag", d.ToETag)
		w.Header().Set("Cache-Control", "no-cache")
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		WriteNegotiated(w, r, d.Encode())
	})
	mux.HandleFunc("GET /repos/{id}/packages/{pkg}", func(w http.ResponseWriter, r *http.Request) {
		repo, err := s.Repo(r.PathValue("id"))
		if err != nil {
			httpError(w, http.StatusNotFound, err)
			return
		}
		pkg := r.PathValue("pkg")
		// Conditional fast path: the package ETag is its content hash
		// from the signed index, so a match skips the cache read (and
		// any re-sanitization) entirely. Checked BEFORE Range — RFC 9110
		// gives If-None-Match precedence, so a revalidating client gets
		// its 304 even when it also sent a Range.
		if etag, err := repo.PackageETag(pkg); err == nil &&
			ETagMatch(r.Header.Get("If-None-Match"), etag) {
			repo.notePackageNotModified()
			w.Header().Set("ETag", etag)
			w.Header().Set("Cache-Control", "no-cache")
			w.WriteHeader(http.StatusNotModified)
			return
		}
		if r.Header.Get("Range") != "" {
			// Range requests serve slices of buffered already-verified
			// bytes: a 206 must never splice unverified data.
			raw, res, err := repo.FetchPackageTracedCtx(r.Context(), pkg)
			if err != nil {
				httpError(w, statusFor(err), err)
				return
			}
			w.Header().Set("ETag", res.ETag)
			w.Header().Set("Cache-Control", "no-cache")
			w.Header().Set("Accept-Ranges", "bytes")
			w.Header().Set("X-Tsr-Served-From", res.From.String())
			w.Header().Set("Content-Type", "application/octet-stream")
			if ServeRange(w, r, res.ETag, raw) {
				return
			}
			w.Write(raw)
			return
		}
		// Full-body requests stream: hash-as-you-copy off the store when
		// it can stream, buffered verified bytes otherwise (see
		// OpenPackageCtx). A mid-stream verification failure aborts the
		// response before the final block, so the client never receives a
		// complete body that does not match the signed entry.
		stream, err := repo.OpenPackageCtx(r.Context(), pkg)
		if err != nil {
			httpError(w, statusFor(err), err)
			return
		}
		defer stream.Close()
		w.Header().Set("ETag", stream.Res.ETag)
		w.Header().Set("Cache-Control", "no-cache")
		w.Header().Set("Accept-Ranges", "bytes")
		w.Header().Set("X-Tsr-Served-From", stream.Res.From.String())
		w.Header().Set("Content-Type", "application/octet-stream")
		w.Header().Set("Content-Length", strconv.FormatInt(stream.Size, 10))
		if _, err := io.Copy(w, stream); err != nil {
			// Headers (and some bytes) are out: the only honest move is
			// to kill the connection so the client sees a truncated
			// transfer, not a complete-looking wrong body.
			panic(http.ErrAbortHandler)
		}
	})
	mux.HandleFunc("GET /repos/{id}/packages/{pkg}/chunks", func(w http.ResponseWriter, r *http.Request) {
		repo, err := s.Repo(r.PathValue("id"))
		if err != nil {
			httpError(w, http.StatusNotFound, err)
			return
		}
		pkg := r.PathValue("pkg")
		m, entry, err := repo.chunkManifest(r.Context(), pkg)
		if err != nil {
			httpError(w, statusFor(err), err)
			return
		}
		// The manifest is immutable per content hash, so it shares the
		// package's strong ETag and revalidates the same way.
		etag := entry.ETag()
		w.Header().Set("ETag", etag)
		w.Header().Set("Cache-Control", "no-cache")
		if ETagMatch(r.Header.Get("If-None-Match"), etag) {
			w.WriteHeader(http.StatusNotModified)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		WriteNegotiated(w, r, EncodeChunkManifest(pkg, m))
	})
	mux.HandleFunc("GET /repos/{id}/scripts/{pkg}", func(w http.ResponseWriter, r *http.Request) {
		repo, err := s.Repo(r.PathValue("id"))
		if err != nil {
			httpError(w, http.StatusNotFound, err)
			return
		}
		preview, err := repo.scriptPreview(r.PathValue("pkg"))
		if err != nil {
			httpError(w, statusFor(err), err)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprint(w, preview)
	})
	mux.HandleFunc("GET /repos/{id}/rejected", func(w http.ResponseWriter, r *http.Request) {
		repo, err := s.Repo(r.PathValue("id"))
		if err != nil {
			httpError(w, http.StatusNotFound, err)
			return
		}
		writeJSON(w, repo.RejectedPackages())
	})
	mux.HandleFunc("GET /repos/{id}/findings", func(w http.ResponseWriter, r *http.Request) {
		repo, err := s.Repo(r.PathValue("id"))
		if err != nil {
			httpError(w, http.StatusNotFound, err)
			return
		}
		writeJSON(w, repo.Findings())
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, map[string]string{"status": "ok"})
	})
	return mux
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func httpError(w http.ResponseWriter, code int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
}

func statusFor(err error) int {
	switch {
	case errors.Is(err, ErrNotInitialized):
		return http.StatusServiceUnavailable
	case errors.Is(err, ErrUnsupportedPkg):
		return http.StatusForbidden
	case errors.Is(err, index.ErrNotFound), errors.Is(err, index.ErrNoDelta):
		return http.StatusNotFound
	case errors.Is(err, ErrUpstream):
		return http.StatusBadGateway
	default:
		return http.StatusInternalServerError
	}
}

// ETagMatch implements If-None-Match matching against a strong ETag
// per RFC 9110 §13.1.2: the header is either `*` (matches any current
// representation) or a list of entity-tags; the comparison is weak, so
// `W/` prefixes on listed tags are ignored. The list is parsed with a
// real tokenizer — members are split on commas *outside* quoted
// strings, because the etagc grammar (%x23-7E) permits commas inside an
// opaque tag — instead of a naive strings.Split. Exported so the edge
// replica HTTP handler answers conditional requests with exactly the
// origin's semantics.
func ETagMatch(header, etag string) bool {
	rest := strings.TrimSpace(header)
	if rest == "" {
		return false
	}
	// `*` is only valid as the entire field value.
	if rest == "*" {
		return true
	}
	for rest != "" {
		rest = strings.TrimLeft(rest, " \t,")
		if rest == "" {
			break
		}
		var candidate string
		candidate, rest = nextETagToken(rest)
		if strings.TrimPrefix(candidate, "W/") == etag {
			return true
		}
	}
	return false
}

// nextETagToken splits one entity-tag (optionally W/-prefixed, normally
// a quoted string) off the front of an If-None-Match field value.
// Malformed input degrades gracefully: an unterminated quote consumes
// the remainder as one token, and an unquoted token (sloppy client)
// extends to the next comma.
func nextETagToken(s string) (token, rest string) {
	i := 0
	if strings.HasPrefix(s, "W/") {
		i = 2
	}
	if i < len(s) && s[i] == '"' {
		if j := strings.IndexByte(s[i+1:], '"'); j >= 0 {
			end := i + 1 + j + 1
			return s[:end], s[end:]
		}
		return s, ""
	}
	if j := strings.IndexByte(s, ','); j >= 0 {
		return strings.TrimSpace(s[:j]), s[j+1:]
	}
	return strings.TrimSpace(s), ""
}

// Client is a package-manager-side HTTP client for one TSR repository.
// It implements pkgmgr.Source, so an OS can be pointed at TSR exactly
// like at a plain mirror (§4.3: "Package managers recognize TSR as a
// standard repository mirror"). The client revalidates the index with
// If-None-Match: an unchanged index costs a 304 round trip instead of a
// full download. Callers still verify the returned signature — the
// cached copy carries it, so a 304 answer is exactly as trustworthy as
// a fresh 200.
type Client struct {
	// BaseURL is the TSR server base (e.g. "http://host:8473").
	BaseURL string
	// RepoID is the tenant repository id from policy deployment.
	RepoID string
	// HTTPClient defaults to a client with a 60s timeout — NOT
	// http.DefaultClient, whose absent timeout would let one
	// black-holed origin connection wedge a sync loop (or a
	// FailoverClient's ranking) forever.
	HTTPClient *http.Client
	// Context, when non-nil, scopes every request this client makes.
	// Daemons set it to their shutdown context so in-flight syncs are
	// aborted instead of drained. Defaults to context.Background().
	Context context.Context
	// PkgCache, when set, retains verified package bytes
	// (content-addressed, untrusted — re-verified on every read) and
	// enables chunk-aware differential fetch: a version bump downloads
	// only the changed chunks and reuses the rest from the cached
	// previous version. nil keeps the classic full-download behavior.
	PkgCache store.Store

	mu        sync.Mutex
	cached    *index.Signed                // last 200 index response (body + signature)
	cachedTag string                       // its ETag, sent as If-None-Match
	cachedIx  *index.Index                 // decoded form of cached (lazy; for package verification)
	lastHash  map[string][sha256.Size]byte // package name -> hash of the last verified fetch (diff base)

	wire wireCounters
}

// defaultHTTPClient bounds every request of clients that did not bring
// their own http.Client. A hung origin or edge then costs one timeout,
// not a goroutine parked forever.
var defaultHTTPClient = &http.Client{Timeout: 60 * time.Second}

func (c *Client) client() *http.Client {
	if c.HTTPClient != nil {
		return c.HTTPClient
	}
	return defaultHTTPClient
}

// newRequest builds a GET bound to ctx — or, when the caller passed
// no per-call context (nil), to the client's configured Context. The
// request carries the caller's trace identity in the X-Tsr-Trace-Id /
// X-Tsr-Span-Id headers, so the server tier joins this trace instead
// of rooting its own.
func (c *Client) newRequest(ctx context.Context, url string) (*http.Request, error) {
	if ctx == nil {
		ctx = c.Context
	}
	if ctx == nil {
		ctx = context.Background()
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return nil, fmt.Errorf("tsr client: %w", err)
	}
	trace.Inject(ctx, req.Header)
	return req, nil
}

// FetchIndex implements pkgmgr.Source.
func (c *Client) FetchIndex() (*index.Signed, error) {
	signed, _, err := c.FetchIndexTagged()
	return signed, err
}

// FetchIndexTagged fetches the signed index together with its strong
// ETag — the handle an edge replica needs to delta-sync later. A 304
// revalidation returns the cached copy and its (unchanged) tag.
func (c *Client) FetchIndexTagged() (*index.Signed, string, error) {
	return c.FetchIndexTaggedCtx(nil)
}

// FetchIndexTaggedCtx is FetchIndexTagged under a caller context: the
// HTTP round trip runs as a child span and the request headers carry
// the trace identity downstream.
func (c *Client) FetchIndexTaggedCtx(ctx context.Context) (_ *index.Signed, _ string, err error) {
	ctx, sp := trace.Start(ctx, "http.index")
	defer func() { sp.SetError(err); sp.End() }()
	req, err := c.newRequest(ctx, c.BaseURL+"/repos/"+c.RepoID+"/index")
	if err != nil {
		return nil, "", err
	}
	// Negotiate gzip explicitly (disabling the transport's transparent
	// mode) so the client controls decompression: the wire counters see
	// the compressed size and verification runs on the decoded
	// canonical text.
	req.Header.Set("Accept-Encoding", "gzip")
	c.mu.Lock()
	prevTag := c.cachedTag
	c.mu.Unlock()
	if prevTag != "" {
		req.Header.Set("If-None-Match", prevTag)
	}
	resp, err := c.client().Do(req)
	if err != nil {
		return nil, "", fmt.Errorf("tsr client: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusNotModified {
		c.mu.Lock()
		cached, tag := c.cached, c.cachedTag
		c.mu.Unlock()
		if cached == nil {
			return nil, "", fmt.Errorf("tsr client: index: 304 Not Modified without a cached index")
		}
		return cached.Clone(), tag, nil
	}
	if resp.StatusCode != http.StatusOK {
		return nil, "", fmt.Errorf("tsr client: index: %s", readErr(resp))
	}
	raw, err := readBodyCounted(resp, maxIndexWireBytes, &c.wire.indexBytes)
	if err != nil {
		return nil, "", fmt.Errorf("tsr client: %w", err)
	}
	// A response without the signature headers cannot be verified: fail
	// fast with the cause instead of returning an index whose empty
	// signature mysteriously fails verification downstream.
	keyName := resp.Header.Get(headerKeyName)
	sigB64 := resp.Header.Get(headerSignature)
	if keyName == "" || sigB64 == "" {
		return nil, "", fmt.Errorf("tsr client: index response missing %s/%s headers (not a TSR signed index?)",
			headerKeyName, headerSignature)
	}
	sig, err := base64.StdEncoding.DecodeString(sigB64)
	if err != nil {
		return nil, "", fmt.Errorf("tsr client: bad signature header: %w", err)
	}
	signed := &index.Signed{Raw: raw, KeyName: keyName, Sig: sig}
	etag := resp.Header.Get("ETag")
	if etag != "" {
		c.mu.Lock()
		// Store only if no concurrent FetchIndex cached a different
		// (necessarily newer-or-equal) response meanwhile: a slow older
		// 200 must not clobber a fresher tag and silently defeat future
		// revalidations.
		if c.cachedTag == prevTag {
			c.cached, c.cachedTag = signed.Clone(), etag
			c.cachedIx = nil // decoded lazily on the next package fetch
		}
		c.mu.Unlock()
	}
	return signed, etag, nil
}

// FetchIndexDelta fetches the delta from the generation tagged
// sinceETag to the server's current one (GET /index/delta). It returns
// index.ErrDeltaUnchanged when the base is already current and wraps
// index.ErrNoDelta when the server cannot produce a delta — the caller
// falls back to FetchIndexTagged.
func (c *Client) FetchIndexDelta(sinceETag string) (*index.Delta, error) {
	return c.FetchIndexDeltaCtx(nil, sinceETag)
}

// FetchIndexDeltaCtx is FetchIndexDelta under a caller context (see
// FetchIndexTaggedCtx).
func (c *Client) FetchIndexDeltaCtx(ctx context.Context, sinceETag string) (_ *index.Delta, err error) {
	ctx, sp := trace.Start(ctx, "http.index_delta")
	defer func() {
		// 304/404 are negotiation outcomes, not failures worth always
		// keeping a trace for.
		if err != nil && !errors.Is(err, index.ErrDeltaUnchanged) && !errors.Is(err, index.ErrNoDelta) {
			sp.SetError(err)
		}
		sp.End()
	}()
	u := c.BaseURL + "/repos/" + c.RepoID + "/index/delta?since=" + url.QueryEscape(sinceETag)
	req, err := c.newRequest(ctx, u)
	if err != nil {
		return nil, err
	}
	req.Header.Set("Accept-Encoding", "gzip")
	resp, err := c.client().Do(req)
	if err != nil {
		return nil, fmt.Errorf("tsr client: %w", err)
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusNotModified:
		return nil, index.ErrDeltaUnchanged
	case http.StatusOK:
	case http.StatusNotFound, http.StatusBadRequest:
		// Base generation fell out of the server's history (or the
		// server predates the delta endpoint): full fetch required.
		return nil, fmt.Errorf("%w: %s", index.ErrNoDelta, readErr(resp))
	default:
		return nil, fmt.Errorf("tsr client: index delta: %s", readErr(resp))
	}
	raw, err := readBodyCounted(resp, maxIndexWireBytes, &c.wire.indexBytes)
	if err != nil {
		return nil, fmt.Errorf("tsr client: %w", err)
	}
	d, err := index.DecodeDelta(raw)
	if err != nil {
		return nil, fmt.Errorf("tsr client: %w", err)
	}
	return d, nil
}

// FetchPackage implements pkgmgr.Source. Before returning, the
// downloaded bytes are verified against the package's entry in the
// (signed) metadata index, so a corrupt mirror, edge, or middlebox is
// detected here — fail fast — rather than handing tampered bytes to
// the caller. A mismatch may also mean the cached index is simply
// stale (the server republished while this client held an old
// generation — e.g. a long-lived client across an origin refresh), so
// the index is revalidated once and the download retried against the
// fresh entry before the failure is final.
func (c *Client) FetchPackage(name string) ([]byte, error) {
	return c.FetchPackageCtx(nil, name)
}

// FetchPackageCtx is FetchPackage under a caller context (see
// FetchIndexTaggedCtx).
func (c *Client) FetchPackageCtx(ctx context.Context, name string) ([]byte, error) {
	entry, err := c.entryFor(ctx, name)
	if err != nil {
		return nil, err
	}
	raw, err := c.fetchPackageAny(ctx, name, entry)
	if err == nil {
		return raw, nil
	}
	ix, ferr := c.currentIndex(ctx, true)
	if ferr != nil {
		return nil, err
	}
	fresh, ferr := ix.Lookup(name)
	if ferr != nil || (fresh.Hash == entry.Hash && fresh.Size == entry.Size) {
		// The package vanished, or the entry is unchanged: the original
		// verification failure stands.
		return nil, err
	}
	return c.fetchPackageAny(ctx, name, fresh)
}

// fetchPackageVerified downloads one package and verifies it against
// the given index entry.
func (c *Client) fetchPackageVerified(ctx context.Context, name string, entry index.Entry) (_ []byte, err error) {
	ctx, sp := trace.Start(ctx, "http.package")
	defer func() { sp.SetError(err); sp.End() }()
	sp.SetAttr("package", name)
	req, err := c.newRequest(ctx, c.BaseURL+"/repos/"+c.RepoID+"/packages/"+name)
	if err != nil {
		return nil, err
	}
	resp, err := c.client().Do(req)
	if err != nil {
		return nil, fmt.Errorf("tsr client: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("tsr client: package %s: %s", name, readErr(resp))
	}
	// The index entry bounds the read: a server streaming endless data
	// is cut off at the declared size (+1 byte to detect overrun).
	//lint:allow streamserve client-side verification requires the whole body; bounded by the signed entry size
	raw, err := io.ReadAll(io.LimitReader(&countReader{r: resp.Body, n: &c.wire.packageBytes}, entry.Size+1))
	if err != nil {
		return nil, fmt.Errorf("tsr client: %w", err)
	}
	if int64(len(raw)) != entry.Size || sha256.Sum256(raw) != entry.Hash {
		return nil, fmt.Errorf("tsr client: package %s: served bytes do not match the signed index entry (corrupt mirror or edge)", name)
	}
	c.wire.fullFetches.Add(1)
	return raw, nil
}

// entryFor returns the index entry for a package, fetching the index
// first when none is cached and revalidating once when the name is
// unknown (the cached index may predate the package).
func (c *Client) entryFor(ctx context.Context, name string) (index.Entry, error) {
	ix, err := c.currentIndex(ctx, false)
	if err != nil {
		return index.Entry{}, err
	}
	if e, err := ix.Lookup(name); err == nil {
		return e, nil
	}
	if ix, err = c.currentIndex(ctx, true); err != nil {
		return index.Entry{}, err
	}
	e, err := ix.Lookup(name)
	if err != nil {
		return index.Entry{}, fmt.Errorf("tsr client: package %s not in the repository index", name)
	}
	return e, nil
}

// currentIndex returns the decoded form of the cached signed index,
// fetching (with revalidation) first when nothing is cached or when the
// caller forces a round trip.
func (c *Client) currentIndex(ctx context.Context, force bool) (*index.Index, error) {
	c.mu.Lock()
	if !force && c.cachedIx != nil {
		ix := c.cachedIx
		c.mu.Unlock()
		return ix, nil
	}
	c.mu.Unlock()
	signed, etag, err := c.FetchIndexTaggedCtx(ctx)
	if err != nil {
		return nil, err
	}
	ix, err := index.Decode(signed.Raw)
	if err != nil {
		return nil, fmt.Errorf("tsr client: decoding index: %w", err)
	}
	c.mu.Lock()
	// Cache the decoded form only while it matches the cached signed
	// index; a concurrent fetch may have advanced the tag meanwhile.
	if c.cachedTag == etag {
		c.cachedIx = ix
	}
	c.mu.Unlock()
	return ix, nil
}

func readErr(resp *http.Response) string {
	//lint:allow streamserve bounded 4 KiB error snippet, not a package body
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
	return strings.TrimSpace(resp.Status + " " + string(body))
}
