package tsr

import (
	"compress/gzip"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"hash"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"

	"tsr/internal/store"
)

// Wire-efficiency helpers (ROADMAP item 4) shared by the origin and
// edge HTTP tiers: negotiated gzip for the (canonically signed) index
// text, single-range 206 serving over verified bytes, the chunk
// manifest wire codec, and the hash-as-you-copy reader the streaming
// serve path uses. Nothing here changes what is signed: gzip wraps the
// canonical text after signing, ranges slice verified bytes, and chunk
// manifests are untrusted metadata rooted in the signed entry hash.

// AcceptsGzip reports whether the request's Accept-Encoding admits
// gzip. Quality values are honored only as far as rejecting an
// explicit q=0; any other listing of gzip (or identity-free *) is a
// yes.
func AcceptsGzip(r *http.Request) bool {
	for _, part := range strings.Split(r.Header.Get("Accept-Encoding"), ",") {
		coding, params, _ := strings.Cut(strings.TrimSpace(part), ";")
		coding = strings.ToLower(strings.TrimSpace(coding))
		if coding != "gzip" && coding != "*" {
			continue
		}
		q := strings.TrimSpace(params)
		if strings.HasPrefix(q, "q=") && strings.TrimPrefix(q, "q=") == "0" {
			continue
		}
		return true
	}
	return false
}

// gzipPool recycles gzip writers across requests; compression level is
// fixed, so pooled writers are interchangeable after Reset.
var gzipPool = sync.Pool{New: func() any {
	zw, _ := gzip.NewWriterLevel(io.Discard, gzip.DefaultCompression)
	return zw
}}

// WriteNegotiated writes body either identity or gzip-compressed
// according to the request's Accept-Encoding, with correct
// Content-Length and Vary headers. The body bytes passed in stay the
// canonical representation (ETags and signatures are computed over
// them); gzip is pure transfer encoding-after-the-fact.
func WriteNegotiated(w http.ResponseWriter, r *http.Request, body []byte) {
	w.Header().Add("Vary", "Accept-Encoding")
	if AcceptsGzip(r) {
		var buf strings.Builder
		zw := gzipPool.Get().(*gzip.Writer)
		zw.Reset(&buf)
		_, werr := zw.Write(body)
		cerr := zw.Close()
		gzipPool.Put(zw)
		if werr == nil && cerr == nil && buf.Len() < len(body) {
			w.Header().Set("Content-Encoding", "gzip")
			w.Header().Set("Content-Length", strconv.Itoa(buf.Len()))
			io.WriteString(w, buf.String())
			return
		}
	}
	w.Header().Set("Content-Length", strconv.Itoa(len(body)))
	w.Write(body)
}

// ParseRange parses a single-range `bytes=` Range header against a
// representation of the given size. ok=false means the header should
// be ignored (absent, non-bytes unit, multi-range, or syntactically
// invalid — RFC 9110 lets a server serve 200 for all of these). A
// syntactically valid but unsatisfiable range returns ErrUnsatisfiable
// and the caller answers 416.
func ParseRange(header string, size int64) (off, length int64, ok bool, err error) {
	spec, found := strings.CutPrefix(strings.TrimSpace(header), "bytes=")
	if !found || strings.Contains(spec, ",") {
		return 0, 0, false, nil
	}
	first, last, found := strings.Cut(strings.TrimSpace(spec), "-")
	if !found {
		return 0, 0, false, nil
	}
	if first == "" {
		// suffix-length form: bytes=-N, the final N bytes.
		n, perr := strconv.ParseInt(last, 10, 64)
		if perr != nil || n < 0 {
			return 0, 0, false, nil
		}
		if n == 0 || size == 0 {
			return 0, 0, false, ErrUnsatisfiable
		}
		if n > size {
			n = size
		}
		return size - n, n, true, nil
	}
	start, perr := strconv.ParseInt(first, 10, 64)
	if perr != nil || start < 0 {
		return 0, 0, false, nil
	}
	end := size - 1
	if last != "" {
		end, perr = strconv.ParseInt(last, 10, 64)
		if perr != nil || end < start {
			return 0, 0, false, nil
		}
	}
	if start >= size {
		return 0, 0, false, ErrUnsatisfiable
	}
	if end > size-1 {
		end = size - 1
	}
	return start, end - start + 1, true, nil
}

// ErrUnsatisfiable marks a syntactically valid Range that selects no
// bytes of the representation (416 Range Not Satisfiable).
var ErrUnsatisfiable = fmt.Errorf("tsr: range not satisfiable")

// ServeRange answers a Range request over already-verified bytes:
// 206 with Content-Range for a satisfiable single range, 416 for an
// unsatisfiable one, and false (caller serves the full body) when the
// header is absent/ignorable or an If-Range condition fails. The ETag
// on a 206 is the FULL representation's strong tag — the content hash
// from the signed index — exactly as RFC 9110 requires; a client
// reassembling ranges still verifies against the signed entry.
func ServeRange(w http.ResponseWriter, r *http.Request, etag string, raw []byte) bool {
	rng := r.Header.Get("Range")
	if rng == "" {
		return false
	}
	// If-Range: serve the full current body when the validator no
	// longer matches, instead of splicing ranges across generations.
	if ir := strings.TrimSpace(r.Header.Get("If-Range")); ir != "" && ir != etag {
		return false
	}
	off, length, ok, err := ParseRange(rng, int64(len(raw)))
	if err != nil {
		w.Header().Set("Content-Range", "bytes */"+strconv.Itoa(len(raw)))
		// RFC 9110 §14.2: an unsatisfiable range is answered with a bare
		// 416 carrying the Content-Range above — there is no error value
		// to route through statusFor, and a JSON error body would hide
		// the required header semantics.
		//lint:allow statusroute protocol-mandated 416 with Content-Range, not a routed error
		w.WriteHeader(http.StatusRequestedRangeNotSatisfiable)
		return true
	}
	if !ok {
		return false
	}
	w.Header().Set("Content-Range",
		fmt.Sprintf("bytes %d-%d/%d", off, off+length-1, len(raw)))
	w.Header().Set("Content-Length", strconv.FormatInt(length, 10))
	w.WriteHeader(http.StatusPartialContent)
	w.Write(raw[off : off+length])
	return true
}

// NewVerifiedReader wraps a stream in hash-as-you-copy verification
// against the signed entry hash: bytes are released to the consumer
// with one block held back, and the final block is released only after
// the complete stream hashed to want. A mismatch surfaces as
// ErrCacheTampered BEFORE the consumer has received the full body, so
// an HTTP handler copying from this reader aborts the response (the
// client sees a truncated transfer, never a complete-but-wrong one).
// onFail, if non-nil, runs once on mismatch — the serving tier uses it
// to drop the tampered cache entry so the next request heals.
func NewVerifiedReader(src io.ReadCloser, want [sha256.Size]byte, onFail func()) io.ReadCloser {
	return &verifiedReader{src: src, want: want, onFail: onFail, h: sha256.New()}
}

type verifiedReader struct {
	src     io.ReadCloser
	want    [sha256.Size]byte
	onFail  func()
	h       hash.Hash
	ready   []byte // verified-for-release bytes
	pending []byte // read and hashed, held until the next block or EOF verdict
	fin     bool
	err     error
}

func (v *verifiedReader) Read(p []byte) (int, error) {
	for len(v.ready) == 0 {
		if v.err != nil {
			return 0, v.err
		}
		if v.fin {
			return 0, io.EOF
		}
		v.advance()
	}
	n := copy(p, v.ready)
	v.ready = v.ready[n:]
	return n, nil
}

// advance reads one block, releasing the previously pending block —
// or, at EOF, verifies the whole-stream hash before releasing the last
// one.
func (v *verifiedReader) advance() {
	block := make([]byte, 32<<10)
	n, err := v.src.Read(block)
	if n > 0 {
		v.h.Write(block[:n])
		v.ready = v.pending
		v.pending = block[:n]
		return
	}
	switch err {
	case nil:
		// Zero-byte read without error: try again on the next loop.
	case io.EOF:
		var sum [sha256.Size]byte
		v.h.Sum(sum[:0])
		if sum != v.want {
			v.pending = nil
			v.err = fmt.Errorf("%w: streamed bytes do not match the signed index entry", ErrCacheTampered)
			if v.onFail != nil {
				v.onFail()
				v.onFail = nil
			}
			return
		}
		v.ready = v.pending
		v.pending = nil
		v.fin = true
	default:
		v.pending = nil
		v.err = err
	}
}

func (v *verifiedReader) Close() error { return v.src.Close() }

// wireManifest is the JSON wire form of a chunk manifest.
type wireManifest struct {
	Package string      `json:"package"`
	Hash    string      `json:"hash"`
	Size    int64       `json:"size"`
	Chunks  []wireChunk `json:"chunks"`
}

type wireChunk struct {
	Offset int64  `json:"offset"`
	Size   int64  `json:"size"`
	Hash   string `json:"hash"`
}

// EncodeChunkManifest renders a manifest for the wire.
func EncodeChunkManifest(name string, m *store.ChunkManifest) []byte {
	doc := wireManifest{
		Package: name,
		Hash:    hex.EncodeToString(m.PackageHash[:]),
		Size:    m.TotalSize,
		Chunks:  make([]wireChunk, len(m.Chunks)),
	}
	for i, c := range m.Chunks {
		doc.Chunks[i] = wireChunk{Offset: c.Offset, Size: c.Size, Hash: hex.EncodeToString(c.Hash[:])}
	}
	out, _ := json.Marshal(doc)
	return out
}

// DecodeChunkManifest parses a wire manifest and checks its internal
// shape (contiguous coverage, bounded chunk sizes). The result is
// still UNTRUSTED until its PackageHash is compared to the signed
// entry and the reassembled bytes hash to it.
func DecodeChunkManifest(raw []byte) (string, *store.ChunkManifest, error) {
	var doc wireManifest
	if err := json.Unmarshal(raw, &doc); err != nil {
		return "", nil, fmt.Errorf("tsr: chunk manifest: %w", err)
	}
	m := &store.ChunkManifest{TotalSize: doc.Size, Chunks: make([]store.ManifestChunk, len(doc.Chunks))}
	if err := decodeHash32(doc.Hash, &m.PackageHash); err != nil {
		return "", nil, err
	}
	for i, c := range doc.Chunks {
		m.Chunks[i] = store.ManifestChunk{Span: store.Span{Offset: c.Offset, Size: c.Size}}
		if err := decodeHash32(c.Hash, &m.Chunks[i].Hash); err != nil {
			return "", nil, err
		}
	}
	if err := m.Valid(); err != nil {
		return "", nil, err
	}
	return doc.Package, m, nil
}

// ReassembleStats reports what a ReassembleChunks call transferred
// versus reused.
type ReassembleStats struct {
	ChunksReused, ChunksFetched int64
	BytesReused, BytesFetched   int64
}

// ReassembleChunks rebuilds the package described by manifest m from
// reusable chunks of old (matched by per-chunk hash) plus byte ranges
// obtained via fetchRange; runs of consecutive missing chunks are
// coalesced into single range fetches. The manifest and the old bytes
// are UNTRUSTED inputs: the caller MUST verify the returned bytes
// against the signed index entry before serving or caching them.
func ReassembleChunks(m *store.ChunkManifest, old []byte, fetchRange func(off, length int64) ([]byte, error)) ([]byte, ReassembleStats, error) {
	oldChunks := make(map[[sha256.Size]byte][]byte)
	for _, s := range store.CutChunks(old) {
		b := old[s.Offset : s.Offset+s.Size]
		oldChunks[sha256.Sum256(b)] = b
	}
	reusable := func(ch store.ManifestChunk) ([]byte, bool) {
		b, ok := oldChunks[ch.Hash]
		return b, ok && int64(len(b)) == ch.Size
	}
	out := make([]byte, m.TotalSize)
	var st ReassembleStats
	for i := 0; i < len(m.Chunks); {
		ch := m.Chunks[i]
		if b, ok := reusable(ch); ok {
			copy(out[ch.Offset:], b)
			st.ChunksReused++
			st.BytesReused += ch.Size
			i++
			continue
		}
		j := i
		for j < len(m.Chunks) {
			if _, ok := reusable(m.Chunks[j]); ok {
				break
			}
			j++
		}
		runOff := ch.Offset
		runEnd := m.Chunks[j-1].Offset + m.Chunks[j-1].Size
		raw, err := fetchRange(runOff, runEnd-runOff)
		if err != nil {
			return nil, st, err
		}
		if int64(len(raw)) != runEnd-runOff {
			return nil, st, fmt.Errorf("tsr: range fetch returned %d bytes, want %d", len(raw), runEnd-runOff)
		}
		copy(out[runOff:], raw)
		st.ChunksFetched += int64(j - i)
		st.BytesFetched += runEnd - runOff
		i = j
	}
	return out, st, nil
}

func decodeHash32(s string, out *[sha256.Size]byte) error {
	b, err := hex.DecodeString(s)
	if err != nil || len(b) != sha256.Size {
		return fmt.Errorf("tsr: chunk manifest: bad hash %q", s)
	}
	copy(out[:], b)
	return nil
}
