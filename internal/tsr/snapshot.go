package tsr

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"time"

	"tsr/internal/index"
	"tsr/internal/sanitize"
	"tsr/internal/trace"
)

// snapshot is the immutable published read state of a repository: the
// signed local index plus everything the serving path needs to answer
// requests without touching Repo.mu. Refresh (and RestoreState) build a
// new snapshot off to the side and swap it in with one atomic pointer
// store, so package managers read the previous consistent state for the
// whole 10–25s sanitization cycle — TSR behaves "exactly like a plain
// mirror" (§4.3) even while the trusted pipeline runs. A failed refresh
// returns before publishing and the previous snapshot keeps serving.
//
// Invariant: every field reachable from a snapshot is immutable after
// publication. The refresh path replaces indexes, plan, and maps
// wholesale (never mutates them in place once assigned), and
// publishLocked copies the maps that refresh updates incrementally.
type snapshot struct {
	mode     CacheMode
	upstream *index.Index  // verified upstream index the local entries derive from
	local    *index.Index  // index of sanitized packages
	localSig *index.Signed // signed local index served to clients
	plan     *sanitize.Plan
	pinned   map[string]index.Entry // packages serving a previous version after a failed refresh
	rejected map[string]string      // package -> rejection reason
	etag     string                 // strong ETag derived from the signed index digest
	// history holds the most recent published index generations
	// (including this one, as the last element) so edge replicas can
	// delta-sync: GET /index/delta?since=<etag> diffs a retained
	// generation against the current index. Maintained copy-on-write
	// via index.AppendGeneration, capped at index.HistoryWindow — the
	// same machinery the edge tier retains its window with, so origin
	// and edge delta endpoints can never drift apart.
	history []index.Generation
}

// publishLocked builds a snapshot from the current refresh-side state
// and publishes it atomically. Caller holds r.mu. No-op until the first
// successful refresh or restore produces a signed index.
func (r *Repo) publishLocked() {
	if r.local == nil || r.localSig == nil {
		return
	}
	snap := &snapshot{
		mode:     r.mode,
		upstream: r.upstream,
		local:    r.local,
		localSig: r.localSig,
		plan:     r.plan,
		pinned:   make(map[string]index.Entry, len(r.pinned)),
		rejected: make(map[string]string, len(r.rejected)),
		etag:     r.localSig.ETag(),
	}
	for k, v := range r.pinned {
		snap.pinned[k] = v
	}
	for k, v := range r.rejected {
		snap.rejected[k] = v
	}
	// Append this generation to the retained history (copy-on-write: a
	// previously published snapshot keeps its own slice). A republish of
	// the same generation (e.g. SetCacheMode) does not duplicate it.
	r.history = index.AppendGeneration(r.history, snap.etag, r.local)
	snap.history = r.history
	r.served.Store(snap)
}

// FetchIndexDelta returns the delta from the generation published under
// sinceETag to the currently served one — the origin side of edge
// replica delta sync. It is lock-free like the other read paths.
// Returns index.ErrDeltaUnchanged when sinceETag IS the current
// generation, and index.ErrNoDelta when the base generation is no
// longer retained (the caller falls back to a full fetch).
func (r *Repo) FetchIndexDelta(sinceETag string) (*index.Delta, error) {
	return r.FetchIndexDeltaCtx(context.Background(), sinceETag)
}

// FetchIndexDeltaCtx is FetchIndexDelta under a caller context: when
// the context is traced, the read runs as an origin-tier span.
func (r *Repo) FetchIndexDeltaCtx(ctx context.Context, sinceETag string) (*index.Delta, error) {
	_, sp := trace.Start(ctx, "origin.index_delta")
	defer sp.End()
	sp.SetTier("origin")
	d, err := r.fetchIndexDelta(sinceETag)
	if err != nil && !errors.Is(err, index.ErrDeltaUnchanged) && !errors.Is(err, index.ErrNoDelta) {
		sp.SetError(err)
	}
	return d, err
}

func (r *Repo) fetchIndexDelta(sinceETag string) (*index.Delta, error) {
	snap := r.served.Load()
	if snap == nil {
		return nil, ErrNotInitialized
	}
	if sinceETag == snap.etag {
		// Counted like the full-index 304: a delta revalidation IS an
		// index read, answered from the tag alone. Operators watching
		// /stats see the replica fleet's polling either way.
		r.noteIndexNotModified()
		r.totals.deltaReads.Add(1)
		return nil, index.ErrDeltaUnchanged
	}
	if base, ok := index.FindGeneration(snap.history, sinceETag); ok {
		r.totals.indexReads.Add(1)
		r.totals.deltaReads.Add(1)
		return index.ComputeDelta(sinceETag, base, snap.localSig, snap.local)
	}
	return nil, fmt.Errorf("%w: since %s", index.ErrNoDelta, sinceETag)
}

// FetchIndex implements pkgmgr.Source: serves the signed local index
// from the published snapshot, without taking the repository lock.
func (r *Repo) FetchIndex() (*index.Signed, error) {
	signed, _, err := r.FetchIndexTagged()
	return signed, err
}

// FetchIndexTagged returns the signed local index together with its
// strong ETag (the quoted hex digest of the signed representation).
// The HTTP layer uses the tag for If-None-Match revalidation.
func (r *Repo) FetchIndexTagged() (*index.Signed, string, error) {
	snap := r.served.Load()
	if snap == nil {
		return nil, "", ErrNotInitialized
	}
	r.totals.indexReads.Add(1)
	return snap.localSig.Clone(), snap.etag, nil
}

// FetchIndexTaggedCtx is FetchIndexTagged under a caller context: when
// the context is traced, the read runs as an origin-tier span.
func (r *Repo) FetchIndexTaggedCtx(ctx context.Context) (*index.Signed, string, error) {
	_, sp := trace.Start(ctx, "origin.index")
	defer sp.End()
	sp.SetTier("origin")
	signed, etag, err := r.FetchIndexTagged()
	sp.SetError(err)
	return signed, etag, err
}

// IndexETag returns the current index ETag without cloning the index —
// the cheap path for If-None-Match revalidation, where a match means
// the body is never materialized at all.
func (r *Repo) IndexETag() (string, error) {
	snap := r.served.Load()
	if snap == nil {
		return "", ErrNotInitialized
	}
	return snap.etag, nil
}

// PackageETag returns the strong ETag of a served package without
// touching its bytes: the quoted hex content hash from the signed
// index. Callers that only revalidate (If-None-Match) skip the cache
// read entirely.
func (r *Repo) PackageETag(name string) (string, error) {
	snap := r.served.Load()
	if snap == nil {
		return "", ErrNotInitialized
	}
	entry, err := snap.local.Lookup(name)
	if err != nil {
		return "", err
	}
	return entry.ETag(), nil
}

// noteIndexNotModified / notePackageNotModified count an If-None-Match
// revalidation answered 304. The read counter is bumped too: a 304 is
// an index/package read served from the snapshot, just a cheaper one.
func (r *Repo) noteIndexNotModified() {
	r.totals.indexReads.Add(1)
	r.totals.notModified.Add(1)
}

func (r *Repo) notePackageNotModified() {
	r.totals.packageReads.Add(1)
	r.totals.notModified.Add(1)
}

// FetchResult describes how a FetchPackage request was served.
type FetchResult struct {
	From ServedFrom
	// Latency is the server-side time to produce the bytes: real time
	// for cache reads and sanitization plus modeled download time.
	Latency time.Duration
	// ETag is the strong entity tag of the served bytes (the quoted hex
	// content hash from the signed index).
	ETag string
}

// FetchPackage implements pkgmgr.Source.
func (r *Repo) FetchPackage(name string) ([]byte, error) {
	raw, _, err := r.FetchPackageTraced(name)
	return raw, err
}

// FetchPackageCtx is FetchPackage under a caller context.
func (r *Repo) FetchPackageCtx(ctx context.Context, name string) ([]byte, error) {
	raw, _, err := r.FetchPackageTracedCtx(ctx, name)
	return raw, err
}

// FetchPackageTraced serves a sanitized package and reports how. It
// reads the published snapshot — never Repo.mu — so requests proceed at
// full speed while a refresh runs. Before returning cached bytes it
// re-verifies them against the in-enclave local index — the §5.5
// defense against cache tampering.
//
// The byte caches are content-addressed per generation, so a refresh
// rewriting the population never invalidates the bytes this snapshot
// references. The one remaining race — a request in flight at the
// publish instant, whose generation the refresh just evicted — is
// resolved by retrying once against the freshly published snapshot.
func (r *Repo) FetchPackageTraced(name string) ([]byte, *FetchResult, error) {
	return r.FetchPackageTracedCtx(context.Background(), name)
}

// FetchPackageTracedCtx is FetchPackageTraced under a caller context:
// when the context is traced, the whole serve — including a coalesced
// fill, where a follower links to the leader's span instead of
// claiming the upstream work — runs as an origin-tier span.
func (r *Repo) FetchPackageTracedCtx(ctx context.Context, name string) ([]byte, *FetchResult, error) {
	ctx, sp := trace.Start(ctx, "origin.package")
	defer sp.End()
	sp.SetTier("origin")
	sp.SetAttr("package", name)
	raw, res, err := r.fetchPackageTraced(ctx, name)
	sp.SetError(err)
	if res != nil {
		sp.SetAttr("served_from", res.From.String())
	}
	return raw, res, err
}

func (r *Repo) fetchPackageTraced(ctx context.Context, name string) ([]byte, *FetchResult, error) {
	snap := r.served.Load()
	if snap == nil {
		return nil, nil, ErrNotInitialized
	}
	r.totals.packageReads.Add(1)
	raw, res, err := r.fetchFromSnapshot(ctx, snap, name)
	if err == nil {
		return raw, res, nil
	}
	if cur := r.served.Load(); cur != snap {
		return r.fetchFromSnapshot(ctx, cur, name)
	}
	if retryableServeError(err) {
		// The snapshot hasn't changed, so the failure may be an
		// artifact of reading through a state an in-flight refresh is
		// about to replace (e.g. an upstream-changed package whose old
		// bytes are gone and whose new bytes are not yet published).
		// Wait out any running refresh — the pre-snapshot behavior for
		// exactly this case — and retry once on what it published.
		// Loading the pointer under the lock guarantees we observe that
		// refresh's publish.
		//lint:allow servenolock deliberate lock barrier on the once-per-snapshot retry path only: it waits out an in-flight refresh, never fronts a read
		r.mu.Lock()
		cur := r.served.Load()
		r.mu.Unlock()
		if cur != snap {
			return r.fetchFromSnapshot(ctx, cur, name)
		}
	}
	return nil, nil, err
}

// noteServedWrite records a store key the serving path wrote, for the
// next refresh's stale-generation reconcile (see Repo.servedWrites).
func (r *Repo) noteServedWrite(key string) {
	r.servedWritesMu.Lock()
	r.servedWrites[key] = struct{}{}
	r.servedWritesMu.Unlock()
}

// retryableServeError reports whether a package-serve failure is worth
// retrying against a newer snapshot: definitive answers (unknown
// package, rejected package, repository not initialized) are not.
func retryableServeError(err error) bool {
	return !errors.Is(err, index.ErrNotFound) &&
		!errors.Is(err, ErrUnsupportedPkg) &&
		!errors.Is(err, ErrNotInitialized)
}

// fetchFromSnapshot answers one package request from the given
// snapshot.
func (r *Repo) fetchFromSnapshot(ctx context.Context, snap *snapshot, name string) ([]byte, *FetchResult, error) {
	start := time.Now()
	entry, err := snap.local.Lookup(name)
	if err != nil {
		if reason, rejected := snap.rejected[name]; rejected {
			return nil, nil, fmt.Errorf("%w: %s: %s", ErrUnsupportedPkg, name, reason)
		}
		return nil, nil, err
	}
	if snap.mode == CacheBoth {
		if raw, err := r.svc.cfg.Store.Get(r.sanitizedKey(name, entry.Hash)); err == nil {
			if int64(len(raw)) == entry.Size && sha256.Sum256(raw) == entry.Hash {
				return raw, &FetchResult{From: ServedSanitizedCache, Latency: time.Since(start), ETag: entry.ETag()}, nil
			}
			// Cache tampered or rolled back. Re-sanitize from original.
			if raw, res, err := r.fillCoalesced(ctx, snap, name, entry, start); err == nil {
				return raw, res, nil
			}
			return nil, nil, fmt.Errorf("%w: %s", ErrCacheTampered, name)
		}
	}
	return r.fillCoalesced(ctx, snap, name, entry, start)
}

// fillResult is the shared output of one coalesced cache fill.
type fillResult struct {
	raw []byte
	res *FetchResult
}

// fillCoalesced wraps resanitize in a singleflight keyed by the
// content hash: when a flash crowd of N concurrent cold requests
// lands on the same package (cache cold, evicted, or CacheNone), ONE
// request runs the expensive download + re-sanitization and the other
// N-1 wait and share its verified bytes. Without this, the origin
// re-ran the identical deterministic fill N times precisely when it
// was already the bottleneck. The key is the entry hash, so identical
// content coalesces even across snapshot generations and package
// names; the result is verified against that same hash inside
// resanitize, so followers share only index-proven bytes.
func (r *Repo) fillCoalesced(ctx context.Context, snap *snapshot, name string, entry index.Entry, start time.Time) ([]byte, *FetchResult, error) {
	v, leaderCtx, leader, err := r.fills.DoCtx(ctx, hex.EncodeToString(entry.Hash[:]), func(context.Context) (fillResult, error) {
		raw, res, err := r.resanitize(snap, name, entry, start)
		if err != nil {
			return fillResult{}, err
		}
		return fillResult{raw: raw, res: res}, nil
	})
	if err != nil {
		return nil, nil, err
	}
	// Every caller — leader included — gets its own COPY of the bytes:
	// every FetchPackage caller has always owned its returned slice
	// (the mem store copies on Get, resanitize allocates fresh), and
	// with followers possibly still mid-copy when the leader's Do
	// returns, a caller mutating a shared buffer must not corrupt the
	// verified bytes the rest of the cohort is holding.
	raw := append([]byte(nil), v.raw...)
	if leader {
		return raw, v.res, nil
	}
	r.totals.coalescedFills.Add(1)
	// The follower's span did not perform the fill: link it to the
	// leader's span rather than recording a fake upstream call.
	trace.SpanFromContext(ctx).LinkCoalesced(trace.SpanFromContext(leaderCtx))
	// Followers get their own result: same provenance and ETag, their
	// own wall-clock wait (which is ≤ the leader's full fill time).
	return raw, &FetchResult{From: v.res.From, Latency: time.Since(start), ETag: v.res.ETag}, nil
}

// resanitize rebuilds the sanitized package from the original (cached
// or downloaded) and checks it matches the snapshot's local index. The
// result must be byte-identical to the indexed version because both
// sanitization and encoding are deterministic. It runs entirely off the
// snapshot plus immutable Repo fields, so concurrent requests — and a
// concurrent refresh — never contend.
func (r *Repo) resanitize(snap *snapshot, name string, entry index.Entry, start time.Time) ([]byte, *FetchResult, error) {
	// A package whose last refresh failed still serves its previous
	// version; rebuild that version from its pinned upstream entry, not
	// from the newer upstream the repository has already verified.
	if snap.plan == nil {
		// Restored state serves from the sanitized cache only; the plan
		// (and with it on-demand re-sanitization) returns with the next
		// refresh.
		return nil, nil, fmt.Errorf("%w: %s: no sanitization plan until the next refresh", ErrCacheTampered, name)
	}
	upEntry, ok := snap.pinned[name]
	if !ok {
		var err error
		upEntry, err = snap.upstream.Lookup(name)
		if err != nil {
			return nil, nil, err
		}
	}
	from := ServedOriginalCache
	orig, dlBytes, err := r.obtainOriginal(snap.mode, name, upEntry)
	if err != nil {
		return nil, nil, err
	}
	var dl time.Duration
	if dlBytes > 0 {
		from = ServedMirror
		dl = r.chargeDownload(dlBytes, 1)
		if snap.mode != CacheNone {
			// obtainOriginal cached the download; record the write so
			// the next refresh can reconcile it (see Repo.servedWrites).
			r.noteServedWrite(r.origKey(name, upEntry.Hash))
		}
	}
	san := &sanitize.Sanitizer{
		Plan:      snap.plan,
		TrustRing: r.trust,
		SignKey:   r.signKey,
		EPC:       r.svc.cfg.EPC,
	}
	res, err := san.Sanitize(orig)
	if err != nil {
		return nil, nil, err
	}
	// Sanitization is fully deterministic (PKCS#1 v1.5 signatures and
	// the archive encoding are both deterministic), so the re-sanitized
	// bytes must hash to exactly the in-enclave index entry.
	if int64(len(res.Raw)) != entry.Size || sha256.Sum256(res.Raw) != entry.Hash {
		return nil, nil, fmt.Errorf("%w: %s (re-sanitized bytes differ from index)", ErrCacheTampered, name)
	}
	// Repair the sanitized cache only when this snapshot is still the
	// published one: a stale-snapshot rebuild should not resurrect a
	// generation the refresh that replaced it has already evicted. The
	// check is best-effort (a publish can land between it and the Put),
	// so the write is also recorded for the next refresh's reconcile.
	if snap.mode == CacheBoth && r.served.Load() == snap {
		key := r.sanitizedKey(name, entry.Hash)
		if err := r.svc.cfg.Store.Put(key, res.Raw); err != nil {
			return nil, nil, err
		}
		r.noteServedWrite(key)
	}
	return res.Raw, &FetchResult{From: from, Latency: time.Since(start) + dl, ETag: entry.ETag()}, nil
}
