package tsr

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"sort"
	"sync"

	"tsr/internal/apk"
	"tsr/internal/index"
	"tsr/internal/sanitize"
	"tsr/internal/sched"
	"tsr/internal/trace"
)

// Batched crash-safe ingest: operators push original packages that do
// not exist on any mirror (private builds, vendored forks) directly
// into a tenant repository. The batch is journaled BEFORE any effect
// lands (see store.Journal) and the journal entry is committed only
// after the sealed checkpoint — a crash at any instant in between
// replays the whole batch on the next warm restart. Replays are
// idempotent: every effect is keyed by content hash, so re-running a
// half-applied batch converges on the same published state.
//
// Ingested packages are sanitized under the repository's current plan
// and verified against the policy's signer ring exactly like mirror
// downloads; the journal adds durability, never trust.

// ErrNotIngestable marks batches the repository cannot accept.
var ErrNotIngestable = errors.New("tsr: batch not ingestable")

// IngestStats describes one RegisterPackages batch.
type IngestStats struct {
	// Received counts packages in the batch.
	Received int `json:"received"`
	// Registered counts packages accepted into the local index.
	Registered int `json:"registered"`
	// Sanitized and CacheHits split the accepted packages into fresh
	// sanitizations and content-cache hits (a replayed batch is all
	// hits).
	Sanitized int `json:"sanitized"`
	CacheHits int `json:"cache_hits"`
	// Rejected lists per-package failures: undecodable, shadowing an
	// upstream package, excluded by policy, or unsupported scripts.
	Rejected []PackageError `json:"rejected,omitempty"`
	// Sequence is the local index sequence after the batch (unchanged
	// when the batch was a pure replay).
	Sequence uint64 `json:"sequence"`
}

// RegisterPackages ingests a batch of original packages. The batch is
// journaled first when the service persists state, then processed as
// one Interactive scheduler job (operator work preempts queued
// background refreshes), and the journal entry is committed after the
// sealed checkpoint lands.
func (r *Repo) RegisterPackages(ctx context.Context, raws [][]byte) (*IngestStats, error) {
	var seq uint64
	journaled := false
	if r.svc.journal != nil {
		sealed, err := r.sealIngestPayload(raws)
		if err != nil {
			return nil, err
		}
		seq, err = r.svc.journal.Append(sealed)
		if err != nil {
			return nil, err
		}
		journaled = true
	}
	stats, err := r.registerScheduled(ctx, raws)
	if err != nil {
		// The journal entry stays pending: the operator's intent is
		// durable and a restart retries the batch.
		return stats, err
	}
	if journaled {
		if cerr := r.svc.journal.Commit(seq); cerr != nil {
			return stats, fmt.Errorf("tsr: ingest applied but journal commit failed: %w", cerr)
		}
	}
	return stats, nil
}

// StageIngest journals a batch WITHOUT processing it — the crash shape
// experiments exercise: the intent is durable, the effects never
// happened, and the next warm restart replays the batch to completion.
func (r *Repo) StageIngest(raws [][]byte) error {
	if r.svc.journal == nil {
		return fmt.Errorf("%w: service does not persist state (no journal)", ErrNotIngestable)
	}
	sealed, err := r.sealIngestPayload(raws)
	if err != nil {
		return err
	}
	_, err = r.svc.journal.Append(sealed)
	return err
}

// registerReplay re-runs a journaled batch during RestoreAll. No new
// journal entry is appended; the caller (Journal.Replay) commits the
// existing one when this returns nil.
func (r *Repo) registerReplay(ctx context.Context, raws [][]byte) (*IngestStats, error) {
	return r.registerScheduled(ctx, raws)
}

// registerScheduled admits the batch through the global scheduler and
// processes it under the repository lock.
func (r *Repo) registerScheduled(ctx context.Context, raws [][]byte) (stats *IngestStats, err error) {
	ctx, sp := trace.Start(ctx, "origin.ingest")
	defer func() {
		if stats != nil {
			sp.SetAttrInt("received", int64(stats.Received))
			sp.SetAttrInt("registered", int64(stats.Registered))
		}
		sp.SetError(err)
		sp.End()
	}()
	sp.SetTier("origin")
	err = r.svc.sched.Run(ctx, r.ID, sched.Interactive, func(ctx context.Context, g *sched.Grant) error {
		var ferr error
		stats, ferr = r.registerGranted(ctx, g, raws)
		return ferr
	})
	return stats, err
}

func (r *Repo) registerGranted(_ context.Context, g *sched.Grant, raws [][]byte) (*IngestStats, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	stats := &IngestStats{Received: len(raws), Sequence: r.seq}

	if r.plan == nil {
		// Cold repository (fresh deploy, or warm restart before the
		// first refresh): rebuild the plan deterministically from the
		// cached scripts, so replayed batches land under the same plan
		// hash the pre-crash ingest used.
		if err := r.rebuildPlanLocked(); err != nil {
			return nil, fmt.Errorf("tsr: ingest needs a sanitization plan: %w", err)
		}
	}
	san := &sanitize.Sanitizer{
		Plan:      r.plan,
		TrustRing: r.trust,
		SignKey:   r.signKey,
		EPC:       r.svc.cfg.EPC,
	}

	// Decode and screen the batch sequentially (cheap), then sanitize
	// the survivors in worker batches leased from the global pool.
	type job struct {
		name  string
		raw   []byte
		entry index.Entry // describes the ORIGINAL bytes
		pkg   *apk.Package
	}
	var jobs []job
	reject := func(name, msg string) {
		stats.Rejected = append(stats.Rejected, PackageError{Name: name, Err: msg})
	}
	seen := make(map[string]bool, len(raws))
	for i, raw := range raws {
		p, err := apk.Decode(raw)
		if err != nil {
			reject(fmt.Sprintf("batch[%d]", i), fmt.Sprintf("undecodable package: %v", err))
			continue
		}
		switch {
		case seen[p.Name]:
			reject(p.Name, "duplicate name within the batch")
			continue
		case r.upstream != nil && func() bool { _, err := r.upstream.Lookup(p.Name); return err == nil }():
			reject(p.Name, "shadows an upstream package of the same name")
			continue
		case !r.policy.Allows(p.Name):
			reject(p.Name, "excluded by policy whitelist/blacklist")
			continue
		}
		seen[p.Name] = true
		hash := sha256.Sum256(raw)
		jobs = append(jobs, job{
			name: p.Name,
			raw:  raw,
			pkg:  p,
			entry: index.Entry{
				Name: p.Name, Version: p.Version, Size: int64(len(raw)),
				Hash: hash, Depends: p.Depends,
			},
		})
	}

	type out struct {
		newEntry index.Entry // describes the SANITIZED bytes
		ok       bool
		cacheHit bool
		reject   string
		err      error
	}
	outs := make([]out, len(jobs))
	workers := r.workers
	planHash := r.planHash
	for base := 0; base < len(jobs); {
		lease := g.Acquire(min(workers, len(jobs)-base))
		batch := jobs[base : base+lease]
		var wg sync.WaitGroup
		for j := range batch {
			wg.Add(1)
			go func(o *out, jb job) {
				defer wg.Done()
				// Original bytes first: refresh re-sanitization and
				// on-demand serving read them back by content hash.
				if err := r.svc.cfg.Store.Put(r.origKey(jb.name, jb.entry.Hash), jb.raw); err != nil {
					o.err = err
					return
				}
				key := r.sanCacheKey(jb.entry.Hash, planHash)
				if ce, err := r.loadCacheEntry(key); err == nil {
					o.newEntry = index.Entry{Name: jb.name, Version: jb.entry.Version, Size: ce.Size, Hash: ce.Hash, Depends: jb.entry.Depends}
					o.ok, o.cacheHit = true, true
					return
				}
				res, err := san.Sanitize(jb.raw)
				if err != nil {
					if errors.Is(err, sanitize.ErrUnsupported) || errors.Is(err, apk.ErrUntrusted) {
						o.reject = err.Error()
						return
					}
					o.err = fmt.Errorf("tsr: sanitizing %s: %w", jb.name, err)
					return
				}
				sum := sha256.Sum256(res.Raw)
				if err := r.svc.cfg.Store.Put(r.sanitizedKey(jb.name, sum), res.Raw); err != nil {
					o.err = err
					return
				}
				if err := r.storeCacheEntry(cacheEntry{Key: key, Size: int64(len(res.Raw)), Hash: sum}); err != nil {
					o.err = err
					return
				}
				o.newEntry = index.Entry{Name: jb.name, Version: jb.entry.Version, Size: int64(len(res.Raw)), Hash: sum, Depends: jb.entry.Depends}
				o.ok = true
			}(&outs[base+j], batch[j])
		}
		wg.Wait()
		g.Release(lease)
		base += lease
	}

	// Merge the accepted packages into the local index. A batch whose
	// every package is already registered at the same content (a
	// journal replay racing a late commit) publishes nothing.
	newLocal := &index.Index{Origin: "tsr-" + r.ID}
	if r.local != nil {
		newLocal = r.local.Clone()
	}
	changed := false
	var firstErr error
	for i := range outs {
		o := &outs[i]
		jb := &jobs[i]
		switch {
		case o.err != nil:
			reject(jb.name, o.err.Error())
			if firstErr == nil {
				firstErr = o.err
			}
		case o.reject != "":
			reject(jb.name, o.reject)
		case o.ok:
			if old, err := newLocal.Lookup(jb.name); err != nil || old.Hash != o.newEntry.Hash {
				newLocal.Add(o.newEntry)
				changed = true
			}
			if re, ok := r.registered[jb.name]; !ok || re.Hash != jb.entry.Hash {
				r.registered[jb.name] = jb.entry
				changed = true
			}
			r.scripts[jb.name] = scriptsEntry{digest: jb.entry.Hash, scripts: jb.pkg.Scripts}
			stats.Registered++
			if o.cacheHit {
				stats.CacheHits++
			} else {
				stats.Sanitized++
			}
		}
	}
	sort.Slice(stats.Rejected, func(i, j int) bool { return stats.Rejected[i].Name < stats.Rejected[j].Name })
	if firstErr != nil {
		// Internal failure (store write, sanitizer bug): leave the
		// published state alone; the journal entry stays pending and the
		// batch is retried. Hash-keyed effects make the retry converge.
		return stats, firstErr
	}
	if !changed {
		stats.Sequence = r.seq
		r.totals.ingested.Add(int64(stats.Registered))
		return stats, nil
	}

	newLocal.Sequence = r.seq + 1
	signedLocal, err := index.Sign(newLocal, r.signKey)
	if err != nil {
		return stats, err
	}
	r.local = newLocal
	r.localSig = signedLocal
	r.seq = newLocal.Sequence
	r.publishLocked()
	stats.Sequence = r.seq
	r.totals.ingested.Add(int64(stats.Registered))
	r.totals.sanitized.Add(int64(stats.Sanitized))
	r.totals.cacheHits.Add(int64(stats.CacheHits))
	if r.svc.cfg.AutoPersist {
		if err := r.checkpointLocked(); err != nil {
			return stats, fmt.Errorf("tsr: ingest published but checkpoint failed: %w", err)
		}
	}
	return stats, nil
}

// rebuildPlanLocked deterministically rebuilds the sanitization plan
// from the current upstream index and cached scripts — the ingest
// path's stand-in for the refresh plan stage. With the original cache
// intact (the warm-restart case) it reproduces the pre-crash plan
// hash, so replayed batches land as pure cache hits; any drift is
// healed by the next refresh's own plan stage.
func (r *Repo) rebuildPlanLocked() error {
	idx := r.upstream
	if idx == nil {
		idx = &index.Index{}
	}
	plan, err := sanitize.BuildPlan(&scriptCacheSource{repo: r, idx: idx}, r.policy.InitConfigFiles, r.signKey)
	if err != nil {
		return err
	}
	r.plan = plan
	r.planHash = plan.Hash()
	return nil
}

// RegisteredPackages lists the operator-registered entries (original
// bytes) in name order.
func (r *Repo) RegisteredPackages() []index.Entry {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.registeredEntriesLocked()
}

// EncodeIngestBody frames a batch for POST /repos/{id}/ingest: each
// package is length-prefixed with the repo's chunk framing.
func EncodeIngestBody(raws [][]byte) []byte {
	var buf bytes.Buffer
	for _, raw := range raws {
		writeChunk(&buf, raw)
	}
	return buf.Bytes()
}

// DecodeIngestBody parses a chunk-framed ingest body.
func DecodeIngestBody(body []byte) ([][]byte, error) {
	buf := bytes.NewReader(body)
	var raws [][]byte
	for buf.Len() > 0 {
		raw, err := readChunk(buf)
		if err != nil {
			return nil, fmt.Errorf("tsr: ingest body: %w", err)
		}
		raws = append(raws, raw)
	}
	if len(raws) == 0 {
		return nil, errors.New("tsr: ingest body: empty batch")
	}
	return raws, nil
}

// --- journal payload --------------------------------------------------

// sealIngestPayload encodes and seals one batch for the journal:
// chunk(repoID) + count + chunk(raw)... . Sealing keeps operator
// package bytes confidential on the untrusted store and prevents a
// store adversary from splicing packages into someone else's pending
// batch.
func (r *Repo) sealIngestPayload(raws [][]byte) ([]byte, error) {
	var buf bytes.Buffer
	writeChunk(&buf, []byte(r.ID))
	var n [8]byte
	binary.BigEndian.PutUint64(n[:], uint64(len(raws)))
	buf.Write(n[:])
	for _, raw := range raws {
		writeChunk(&buf, raw)
	}
	return r.svc.Seal(buf.Bytes())
}

// decodeIngestPayload unseals and parses a journaled batch.
func decodeIngestPayload(s *Service, payload []byte) (id string, raws [][]byte, err error) {
	blob, err := s.Unseal(payload)
	if err != nil {
		return "", nil, fmt.Errorf("tsr: ingest journal entry: %w", err)
	}
	buf := bytes.NewReader(blob)
	rawID, err := readChunk(buf)
	if err != nil {
		return "", nil, err
	}
	var n [8]byte
	if _, err := buf.Read(n[:]); err != nil {
		return "", nil, fmt.Errorf("tsr: ingest journal entry: %w", err)
	}
	count := binary.BigEndian.Uint64(n[:])
	if count > 1<<20 {
		return "", nil, fmt.Errorf("tsr: ingest journal entry: absurd package count %d", count)
	}
	raws = make([][]byte, 0, count)
	for i := uint64(0); i < count; i++ {
		raw, err := readChunk(buf)
		if err != nil {
			return "", nil, err
		}
		raws = append(raws, raw)
	}
	return string(rawID), raws, nil
}

// ingestPayloadRepo returns the repo id a journaled batch addresses,
// or "" when the payload cannot be decoded.
func ingestPayloadRepo(payload []byte, s *Service) string {
	id, _, err := decodeIngestPayload(s, payload)
	if err != nil {
		return ""
	}
	return id
}
