// Package chaos provides the composed-failure machinery behind the
// fleet-soak experiment: a deterministic, seeded schedule of fault
// events (schedule.go) and a continuous invariant checker that observes
// every client-visible read while the faults compose.
//
// The checker encodes the paper's end-to-end trust claim as runtime
// assertions: no matter what the untrusted middleware between clients
// and the enclave does — frozen, corrupt, or offline edges, crashed
// origins, dead mirrors — a client must never accept unverified bytes,
// never move backwards in index generations, and must converge to the
// origin's generation once the weather clears. A read that *fails* is
// availability, not a violation; a read that *succeeds with wrong
// data* is a violation, and one violation fails the run.
package chaos

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sync"

	"tsr/internal/index"
	"tsr/internal/keys"
	"tsr/internal/obs"
	"tsr/internal/sched"
	"tsr/internal/trace"
)

// Invariant names, used as the Violation.Invariant discriminator and
// documented in docs/SOAK.md.
const (
	// InvVerifiedBytes: every package body accepted by a client matches
	// the size and SHA-256 of its entry in a verified signed index.
	InvVerifiedBytes = "verified-bytes"
	// InvIndexSignature: every index accepted by a client carries a
	// valid origin signature (checked independently of the client).
	InvIndexSignature = "index-signature"
	// InvMonotoneSequence: per client, accepted index sequences never
	// regress.
	InvMonotoneSequence = "monotone-sequence"
	// InvETagBody: every HTTP 200 package response pairs its strong
	// ETag with exactly the body it serves (ETag == sha256(body)).
	InvETagBody = "etag-matches-body"
	// InvShedContract: every HTTP 429 carries a Retry-After hint.
	InvShedContract = "shed-contract"
	// InvAdmissionBound: the in-flight peak never exceeds the
	// -max-inflight bound the admission gate advertises.
	InvAdmissionBound = "admission-bound"
	// InvRangeConsistent: every HTTP 206 slice is exactly the requested
	// bytes of the full representation, carries the FULL
	// representation's strong ETag (never a hash of the slice), and
	// declares the full length in Content-Range.
	InvRangeConsistent = "range-consistent"
	// InvTraceHeader: every HTTP 200 from an obs-wrapped tier names the
	// trace that served it via a well-formed X-Tsr-Trace-Id header, so
	// any response can be quoted against /debug/traces/{id}.
	InvTraceHeader = "trace-header"
	// InvSchedBound: the global refresh scheduler's busy watermarks
	// never exceed its configured bounds — leased worker slots stay
	// within Workers and admitted jobs within MaxActive, however many
	// tenants churn.
	InvSchedBound = "sched-bound"
	// InvBoundedStaleness: once churn quiesces and replicas resync,
	// every client converges on the origin's current sequence.
	InvBoundedStaleness = "bounded-staleness"
)

// Violation is one observed invariant breach.
type Violation struct {
	Invariant string `json:"invariant"`
	Actor     string `json:"actor"`
	Detail    string `json:"detail"`
}

func (v Violation) String() string {
	return fmt.Sprintf("%s[%s]: %s", v.Invariant, v.Actor, v.Detail)
}

// Checker is the continuous invariant checker: every client-visible
// read during a soak is reported to it, and it accumulates violations
// instead of failing fast, so one run surfaces every breach at once.
// All methods are safe for concurrent use from client goroutines.
type Checker struct {
	// Trust verifies index signatures independently of the clients
	// under test — a buggy client cannot vouch for itself.
	Trust *keys.Ring

	mu sync.Mutex
	// lastSeq tracks the highest index sequence accepted per actor.
	lastSeq map[string]uint64
	// entrySizes records, per package name, the body size of every
	// (hash, size) entry seen across accepted index generations — the
	// ground truth for PackageAcceptedAnyGen.
	entrySizes map[string]map[[sha256.Size]byte]int64
	violations []Violation
	checks     int64
}

// NewChecker builds a checker that verifies indexes against ring.
func NewChecker(ring *keys.Ring) *Checker {
	return &Checker{
		Trust:      ring,
		lastSeq:    make(map[string]uint64),
		entrySizes: make(map[string]map[[sha256.Size]byte]int64),
	}
}

func (c *Checker) violate(invariant, actor, format string, args ...any) {
	c.mu.Lock()
	c.violations = append(c.violations, Violation{
		Invariant: invariant,
		Actor:     actor,
		Detail:    fmt.Sprintf(format, args...),
	})
	c.mu.Unlock()
}

func (c *Checker) note(n int64) {
	c.mu.Lock()
	c.checks += n
	c.mu.Unlock()
}

// IndexAccepted checks an index a client accepted: independent
// signature verification, decodability, and per-client sequence
// monotonicity. It returns the decoded index (nil when it failed to
// decode) so the caller can resolve package entries from exactly the
// generation the checker recorded.
func (c *Checker) IndexAccepted(actor string, signed *index.Signed) *index.Index {
	c.note(3)
	if c.Trust != nil {
		if err := signed.VerifySignature(c.Trust); err != nil {
			c.violate(InvIndexSignature, actor, "accepted index fails independent verification: %v", err)
			return nil
		}
	}
	ix, err := index.Decode(signed.Raw)
	if err != nil {
		c.violate(InvIndexSignature, actor, "accepted index does not decode: %v", err)
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, e := range ix.Entries {
		m := c.entrySizes[e.Name]
		if m == nil {
			m = make(map[[sha256.Size]byte]int64)
			c.entrySizes[e.Name] = m
		}
		m[e.Hash] = e.Size
	}
	if prev, ok := c.lastSeq[actor]; ok && ix.Sequence < prev {
		c.violations = append(c.violations, Violation{
			Invariant: InvMonotoneSequence,
			Actor:     actor,
			Detail:    fmt.Sprintf("sequence regressed %d -> %d", prev, ix.Sequence),
		})
		return ix
	}
	c.lastSeq[actor] = ix.Sequence
	return ix
}

// PackageAccepted checks package bytes a client accepted against the
// entry of the verified index it requested them under.
func (c *Checker) PackageAccepted(actor string, entry index.Entry, body []byte) {
	c.note(1)
	if int64(len(body)) != entry.Size || sha256.Sum256(body) != entry.Hash {
		c.violate(InvVerifiedBytes, actor,
			"%s: accepted %d bytes not matching signed entry (size %d)", entry.Name, len(body), entry.Size)
	}
}

// PackageMatchesAnyGen reports whether body matches the (hash, size)
// of name's entry in any accepted index generation. It is the lookup
// half of PackageAcceptedAnyGen, split out so a caller that misses can
// first feed the client's refreshed index through IndexAccepted (a
// republish may have landed between the index read and the package
// read) and then assert.
func (c *Checker) PackageMatchesAnyGen(name string, body []byte) bool {
	sum := sha256.Sum256(body)
	c.mu.Lock()
	defer c.mu.Unlock()
	size, ok := c.entrySizes[name][sum]
	return ok && size == int64(len(body))
}

// PackageAcceptedAnyGen checks package bytes for a name whose content
// legitimately changes across generations (a version-bumped package):
// the bytes must match the entry of SOME accepted index generation.
// The strict PackageAccepted pairing with one entry would race with a
// concurrent republish; freshness is separately enforced by the
// clients (RejectedStale) and by InvBoundedStaleness at quiesce.
func (c *Checker) PackageAcceptedAnyGen(actor, name string, body []byte) {
	c.note(1)
	if c.PackageMatchesAnyGen(name, body) {
		return
	}
	c.violate(InvVerifiedBytes, actor,
		"%s: accepted %d bytes matching no entry of any accepted index generation", name, len(body))
}

// HTTPResponse checks one response from an obs-wrapped HTTP package
// endpoint: a 200 must pair its strong ETag with the body it carries,
// a 429 must carry the Retry-After backoff hint. Other statuses
// (404/503 during churn) are availability, not violations.
func (c *Checker) HTTPResponse(actor string, status int, etag, retryAfter string, body []byte) {
	c.note(1)
	switch status {
	case 200:
		sum := sha256.Sum256(body)
		if want := `"` + hex.EncodeToString(sum[:]) + `"`; etag != want {
			c.violate(InvETagBody, actor, "200 with ETag %s over body hashing to %s", etag, want)
		}
	case 429:
		if retryAfter == "" {
			c.violate(InvShedContract, actor, "429 without Retry-After")
		}
	}
}

// RangeResponse checks one Range response against a full 200
// representation fetched from the same handler under the same ETag
// (the caller pins the pairing with If-Range): a 206 must carry the
// full representation's strong ETag, a Content-Range declaring the
// full length, and body bytes that are exactly that slice of the full
// body. A non-206 (full 200 after a republish, 429, churn-window 5xx)
// is availability, not a violation.
func (c *Checker) RangeResponse(actor string, status int, etag, contentRange string, part, full []byte) {
	c.note(1)
	if status != 206 {
		return
	}
	sum := sha256.Sum256(full)
	if want := `"` + hex.EncodeToString(sum[:]) + `"`; etag != want {
		c.violate(InvRangeConsistent, actor,
			"206 with ETag %s, want the full representation's %s", etag, want)
		return
	}
	var first, last, total int64
	if n, err := fmt.Sscanf(contentRange, "bytes %d-%d/%d", &first, &last, &total); n != 3 || err != nil {
		c.violate(InvRangeConsistent, actor, "206 with malformed Content-Range %q", contentRange)
		return
	}
	if total != int64(len(full)) || first < 0 || last < first || last >= total {
		c.violate(InvRangeConsistent, actor,
			"206 Content-Range %q inconsistent with the %d-byte representation", contentRange, len(full))
		return
	}
	if !bytes.Equal(part, full[first:last+1]) {
		c.violate(InvRangeConsistent, actor,
			"206 body is not bytes %d-%d of the representation it names", first, last)
	}
}

// TraceHeader checks the observability half of a served response:
// every 200 must carry a well-formed X-Tsr-Trace-Id, the handle that
// joins the response to its span tree in /debug/traces. Non-200s are
// exempt — sheds and churn-window failures may bypass tracing.
func (c *Checker) TraceHeader(actor string, status int, traceID string) {
	c.note(1)
	if status != 200 {
		return
	}
	if !trace.ValidTraceID(traceID) {
		c.violate(InvTraceHeader, actor, "200 with %s = %q, want a 32-hex trace ID", trace.HeaderTraceID, traceID)
	}
}

// AdmissionSnapshot checks an obs middleware snapshot against the
// -max-inflight contract: the peak of the in-flight gauge must never
// have exceeded the advertised bound.
func (c *Checker) AdmissionSnapshot(actor string, s obs.Snapshot) {
	c.note(1)
	if s.MaxInflight > 0 && s.PeakInflight > s.MaxInflight {
		c.violate(InvAdmissionBound, actor,
			"peak inflight %d > max inflight %d", s.PeakInflight, s.MaxInflight)
	}
}

// SchedSnapshot checks a refresh-scheduler snapshot against its
// configured bounds: the peak of leased worker slots must never have
// exceeded the shared pool, and the peak of concurrently admitted jobs
// must never have exceeded MaxActive. Unbounded dimensions (0) are
// exempt.
func (c *Checker) SchedSnapshot(actor string, s sched.Snapshot) {
	c.note(1)
	if s.Workers > 0 && s.PeakSlots > s.Workers {
		c.violate(InvSchedBound, actor,
			"peak leased slots %d > worker pool %d", s.PeakSlots, s.Workers)
	}
	if s.MaxActive > 0 && s.PeakActive > s.MaxActive {
		c.violate(InvSchedBound, actor,
			"peak active jobs %d > max active %d", s.PeakActive, s.MaxActive)
	}
}

// Quiesced asserts bounded staleness after the churn schedule drains:
// every actor that accepted at least one index must have converged on
// the origin's current sequence. Returns the number of lagging actors.
func (c *Checker) Quiesced(originSeq uint64) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	lagging := 0
	for actor, seq := range c.lastSeq {
		c.checks++
		if seq != originSeq {
			lagging++
			c.violations = append(c.violations, Violation{
				Invariant: InvBoundedStaleness,
				Actor:     actor,
				Detail:    fmt.Sprintf("converged on sequence %d, origin is at %d", seq, originSeq),
			})
		}
	}
	return lagging
}

// Sequence returns the highest sequence recorded for an actor.
func (c *Checker) Sequence(actor string) uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lastSeq[actor]
}

// Checks returns how many invariant assertions ran.
func (c *Checker) Checks() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.checks
}

// Violations returns a copy of every breach observed so far.
func (c *Checker) Violations() []Violation {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]Violation(nil), c.violations...)
}
