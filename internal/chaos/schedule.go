package chaos

import (
	"fmt"
	"sort"

	"tsr/internal/edge"
	"tsr/internal/netsim"
)

// EventKind enumerates the scenario zoo: every fault class the soak
// composes, plus the control-plane events (refreshes, restarts) that
// keep the world moving underneath them.
type EventKind int

const (
	// FlashCrowd drives an overload burst through the obs-wrapped edge
	// HTTP handler at 2x the admission bound.
	FlashCrowd EventKind = iota
	// EdgeKill takes an edge replica out from under live traffic.
	EdgeKill
	// EdgeRestart brings a killed edge back over its persisted store
	// (warm LoadState + catch-up sync).
	EdgeRestart
	// EdgeRollback restarts an edge over a rolled-back journal: the
	// replica comes back serving an old generation, and the clients'
	// freshness floor has to route around it until it resyncs.
	EdgeRollback
	// ByzantineFlip switches an edge's behavior
	// (Honest/Freeze/Corrupt/Offline) mid-traffic.
	ByzantineFlip
	// OriginCrash kills the origin service; OriginRestart warm-boots it
	// from the -data-dir store while traffic continues on the edges.
	OriginCrash
	OriginRestart
	// MirrorOutage / MirrorRecover toggle an upstream mirror, so a
	// refresh landing in the window exercises the quorum degradation.
	MirrorOutage
	MirrorRecover
	// Refresh publishes a new package and refreshes the tenant — a new
	// signed generation for the fleet to converge on.
	Refresh
	// TenantDeploy deploys an extra tenant repository on the shared
	// origin mid-soak and bulk-ingests a batch of operator packages
	// through the crash-safe journal — multi-tenant churn riding the
	// same scheduler as the primary tenant's refreshes. TenantKill
	// undeploys it later. The churn tenant stays out of the client data
	// plane; what the soak asserts is that its scheduler and store
	// traffic never bends any invariant the primary tenant is checked
	// against.
	TenantDeploy
	TenantKill
)

// String implements fmt.Stringer.
func (k EventKind) String() string {
	switch k {
	case FlashCrowd:
		return "flash-crowd"
	case EdgeKill:
		return "edge-kill"
	case EdgeRestart:
		return "edge-restart"
	case EdgeRollback:
		return "edge-rollback"
	case ByzantineFlip:
		return "byzantine-flip"
	case OriginCrash:
		return "origin-crash"
	case OriginRestart:
		return "origin-restart"
	case MirrorOutage:
		return "mirror-outage"
	case MirrorRecover:
		return "mirror-recover"
	case Refresh:
		return "refresh"
	case TenantDeploy:
		return "tenant-deploy"
	case TenantKill:
		return "tenant-kill"
	default:
		return fmt.Sprintf("EventKind(%d)", int(k))
	}
}

// Event is one scheduled fault or control-plane action.
type Event struct {
	// Tick is the soak tick the event fires at.
	Tick int
	// Kind selects the scenario.
	Kind EventKind
	// Target is the edge slot or mirror this event hits (unused for
	// origin and flash-crowd events). Edge slot 0 — the slot fronting
	// the HTTP/admission path — is never targeted, so the ETag/body and
	// shed invariants stay checkable on every 200 it serves.
	Target int
	// Behavior is the edge.Behavior a ByzantineFlip switches to.
	Behavior edge.Behavior
}

func (e Event) String() string {
	switch e.Kind {
	case ByzantineFlip:
		return fmt.Sprintf("t%02d %s edge-%d -> %s", e.Tick, e.Kind, e.Target, e.Behavior)
	case EdgeKill, EdgeRestart, EdgeRollback:
		return fmt.Sprintf("t%02d %s edge-%d", e.Tick, e.Kind, e.Target)
	case MirrorOutage, MirrorRecover:
		return fmt.Sprintf("t%02d %s mirror-%d", e.Tick, e.Kind, e.Target)
	default:
		return fmt.Sprintf("t%02d %s", e.Tick, e.Kind)
	}
}

// minSoakTicks is the floor BuildSchedule clamps to: below this the
// guaranteed event classes cannot be spread out enough to compose.
const minSoakTicks = 12

// BuildSchedule derives the event schedule for one soak run from a
// seeded RNG. The schedule is a pure function of the RNG stream and
// the shape parameters, so two runs with the same seed replay the same
// weather. It guarantees at least one of every composed failure class:
// two flash crowds, edge kill/restart churn, an edge rollback, a
// byzantine flip through each misbehavior (each flipped back to honest
// later), an origin crash with a warm restart 2-3 ticks after, and a
// mirror outage window — with refreshes publishing new generations
// throughout. Edge slot 0 and all events assume edges >= 2; with fewer
// edges the edge-targeted classes are skipped.
func BuildSchedule(rng *netsim.RNG, ticks, edges, mirrors int) []Event {
	if ticks < minSoakTicks {
		ticks = minSoakTicks
	}
	var events []Event
	add := func(tick int, kind EventKind, target int, b edge.Behavior) {
		if tick < 1 {
			tick = 1
		}
		if tick > ticks-1 {
			tick = ticks - 1
		}
		events = append(events, Event{Tick: tick, Kind: kind, Target: target, Behavior: b})
	}
	// Ticks in [lo, hi] chosen from the seeded stream.
	pick := func(lo, hi int) int {
		if hi <= lo {
			return lo
		}
		return lo + rng.Intn(hi-lo+1)
	}
	// A regular heartbeat of new generations for the fleet to chase.
	for t := 2; t <= ticks-3; t += 3 {
		add(t, Refresh, 0, edge.Honest)
	}
	// Two flash crowds, one in each half of the run.
	add(pick(1, ticks/2-1), FlashCrowd, 0, edge.Honest)
	add(pick(ticks/2, ticks-2), FlashCrowd, 0, edge.Honest)
	if edges >= 2 {
		victim := func() int { return 1 + rng.Intn(edges-1) }
		// Two kill/restart churn pairs.
		for i := 0; i < 2; i++ {
			v := victim()
			kill := pick(1, ticks-4)
			add(kill, EdgeKill, v, edge.Honest)
			add(kill+1+rng.Intn(2), EdgeRestart, v, edge.Honest)
		}
		// One rollback: the replica comes back on an old journal.
		add(pick(2, ticks-3), EdgeRollback, victim(), edge.Honest)
		// Each misbehavior flips on somewhere, then back to honest.
		for _, b := range []edge.Behavior{edge.Freeze, edge.Corrupt, edge.Offline} {
			v := victim()
			flip := pick(1, ticks-4)
			add(flip, ByzantineFlip, v, b)
			add(flip+1+rng.Intn(3), ByzantineFlip, v, edge.Honest)
		}
	}
	// Origin crash in the middle third, warm restart 2-3 ticks later —
	// wide enough that client traffic runs against a dead origin, short
	// enough that the run still converges.
	crash := pick(ticks/3, 2*ticks/3)
	add(crash, OriginCrash, 0, edge.Honest)
	add(crash+2+rng.Intn(2), OriginRestart, 0, edge.Honest)
	if mirrors > 0 {
		m := rng.Intn(mirrors)
		out := pick(2, ticks-4)
		add(out, MirrorOutage, m, edge.Honest)
		add(out+2, MirrorRecover, m, edge.Honest)
	}
	// Tenant churn: an extra tenant deploys (and bulk-ingests) before
	// the origin-crash window can open, then is undeployed a few ticks
	// later — so its journal and scheduler traffic overlaps the faults
	// above, and a kill landing inside the crash window leaves the
	// churn tenant to ride through the warm restart instead. These
	// draws are appended LAST deliberately: earlier draws keep their
	// stream positions, so schedules pinned by seed elsewhere do not
	// shift.
	dep := pick(2, ticks/3-1)
	add(dep, TenantDeploy, 0, edge.Honest)
	add(dep+1+rng.Intn(2), TenantKill, 0, edge.Honest)
	// Stable order: by tick, construction order breaking ties — the
	// harness applies each tick's events in slice order.
	sort.SliceStable(events, func(i, j int) bool { return events[i].Tick < events[j].Tick })
	return events
}

// ComposedFailures counts the events that count toward the "composed
// failure" acceptance floor: the faults themselves, not the restarts
// and refreshes that heal them.
func ComposedFailures(events []Event) int {
	n := 0
	for _, e := range events {
		switch e.Kind {
		case FlashCrowd, EdgeKill, EdgeRollback, OriginCrash, MirrorOutage:
			n++
		case ByzantineFlip:
			if e.Behavior != edge.Honest {
				n++
			}
		}
	}
	return n
}

// CountByKind tallies a schedule for the BENCH report.
func CountByKind(events []Event) map[string]int {
	out := make(map[string]int)
	for _, e := range events {
		out[e.Kind.String()]++
	}
	return out
}
