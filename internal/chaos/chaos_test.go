package chaos

import (
	"crypto/sha256"
	"encoding/hex"
	"testing"

	"tsr/internal/edge"
	"tsr/internal/index"
	"tsr/internal/keys"
	"tsr/internal/netsim"
	"tsr/internal/obs"
)

func signedIndex(t *testing.T, seq uint64, entries ...index.Entry) (*index.Signed, *keys.Ring) {
	t.Helper()
	pair := keys.Shared.MustGet("chaos-test-origin")
	ix := &index.Index{Origin: "chaos-test", Sequence: seq, Entries: entries}
	signed, err := index.Sign(ix, pair)
	if err != nil {
		t.Fatal(err)
	}
	return signed, keys.NewRing(pair.Public())
}

func entryFor(name string, body []byte) index.Entry {
	return index.Entry{Name: name, Version: "1.0", Size: int64(len(body)), Hash: sha256.Sum256(body)}
}

func TestCheckerAcceptsHonestReads(t *testing.T) {
	body := []byte("package bytes")
	e := entryFor("pkg-a", body)
	signed, ring := signedIndex(t, 3, e)
	c := NewChecker(ring)
	ix := c.IndexAccepted("client-0", signed)
	if ix == nil || ix.Sequence != 3 {
		t.Fatalf("IndexAccepted returned %+v", ix)
	}
	c.PackageAccepted("client-0", e, body)
	sum := sha256.Sum256(body)
	c.HTTPResponse("edge-0", 200, `"`+hex.EncodeToString(sum[:])+`"`, "", body)
	c.HTTPResponse("edge-0", 429, "", "1", nil)
	c.HTTPResponse("edge-0", 503, "", "", nil)
	c.AdmissionSnapshot("edge-0", obs.Snapshot{MaxInflight: 8, PeakInflight: 8})
	if lag := c.Quiesced(3); lag != 0 {
		t.Fatalf("lagging = %d", lag)
	}
	if v := c.Violations(); len(v) != 0 {
		t.Fatalf("violations on honest reads: %v", v)
	}
	if c.Checks() == 0 {
		t.Fatal("no checks counted")
	}
}

func TestCheckerCatchesEveryBreach(t *testing.T) {
	body := []byte("package bytes")
	e := entryFor("pkg-a", body)
	signed, ring := signedIndex(t, 5, e)
	c := NewChecker(ring)

	// Tampered signature.
	bad := signed.Clone()
	bad.Sig[0] ^= 0xFF
	if ix := c.IndexAccepted("client-sig", bad); ix != nil {
		t.Fatal("tampered index decoded as accepted")
	}
	// Sequence regression.
	older, _ := signedIndex(t, 4, e)
	c.IndexAccepted("client-seq", signed)
	c.IndexAccepted("client-seq", older)
	// Wrong package bytes.
	c.PackageAccepted("client-bytes", e, []byte("tampered!"))
	// 200 whose ETag does not hash the body.
	c.HTTPResponse("edge-0", 200, `"deadbeef"`, "", body)
	// 429 without the backoff hint.
	c.HTTPResponse("edge-0", 429, "", "", nil)
	// Admission bound exceeded.
	c.AdmissionSnapshot("edge-0", obs.Snapshot{MaxInflight: 8, PeakInflight: 9})
	// A client stuck behind the fleet after quiesce.
	c.IndexAccepted("client-stale", signed)
	if lag := c.Quiesced(6); lag == 0 {
		t.Fatal("no lagging clients detected")
	}

	got := map[string]bool{}
	for _, v := range c.Violations() {
		got[v.Invariant] = true
	}
	for _, want := range []string{
		InvIndexSignature, InvMonotoneSequence, InvVerifiedBytes,
		InvETagBody, InvShedContract, InvAdmissionBound, InvBoundedStaleness,
	} {
		if !got[want] {
			t.Errorf("missing violation %s (got %v)", want, c.Violations())
		}
	}
}

func TestScheduleDeterministicPerSeed(t *testing.T) {
	a := BuildSchedule(netsim.NewRNG(42), 32, 4, 3)
	b := BuildSchedule(netsim.NewRNG(42), 32, 4, 3)
	if len(a) != len(b) {
		t.Fatalf("schedule lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("event %d differs: %v vs %v", i, a[i], b[i])
		}
	}
	other := BuildSchedule(netsim.NewRNG(43), 32, 4, 3)
	same := len(other) == len(a)
	if same {
		for i := range a {
			if a[i] != other[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("different seeds produced identical schedules")
	}
}

func TestScheduleGuaranteesComposedClasses(t *testing.T) {
	for _, seed := range []int64{1, 7, 11, 99} {
		events := BuildSchedule(netsim.NewRNG(seed), 24, 4, 3)
		byKind := CountByKind(events)
		for _, kind := range []EventKind{
			FlashCrowd, EdgeKill, EdgeRestart, EdgeRollback, ByzantineFlip,
			OriginCrash, OriginRestart, MirrorOutage, MirrorRecover, Refresh,
		} {
			if byKind[kind.String()] == 0 {
				t.Fatalf("seed %d: no %s event in %v", seed, kind, events)
			}
		}
		if n := ComposedFailures(events); n < 5 {
			t.Fatalf("seed %d: only %d composed failures", seed, n)
		}
		// Kills pair with restarts, flips return to honest, the origin
		// restarts after its crash, ordering is by tick, and the front
		// edge slot is never a target.
		lastTick := 0
		flipsAway, flipsBack := 0, 0
		for _, e := range events {
			if e.Tick < lastTick {
				t.Fatalf("seed %d: out-of-order schedule: %v", seed, events)
			}
			lastTick = e.Tick
			switch e.Kind {
			case EdgeKill, EdgeRestart, EdgeRollback:
				if e.Target == 0 {
					t.Fatalf("seed %d: event targets protected edge slot 0: %v", seed, e)
				}
			case ByzantineFlip:
				if e.Target == 0 {
					t.Fatalf("seed %d: flip targets protected edge slot 0: %v", seed, e)
				}
				if e.Behavior == edge.Honest {
					flipsBack++
				} else {
					flipsAway++
				}
			}
		}
		if byKind[EdgeKill.String()] != byKind[EdgeRestart.String()] {
			t.Fatalf("seed %d: kills %d != restarts %d", seed, byKind[EdgeKill.String()], byKind[EdgeRestart.String()])
		}
		if flipsAway != 3 || flipsBack != 3 {
			t.Fatalf("seed %d: flips away %d / back %d, want 3 / 3", seed, flipsAway, flipsBack)
		}
	}
}

func TestScheduleSkipsEdgeEventsWithoutEdges(t *testing.T) {
	events := BuildSchedule(netsim.NewRNG(5), 16, 1, 0)
	for _, e := range events {
		switch e.Kind {
		case EdgeKill, EdgeRestart, EdgeRollback, ByzantineFlip, MirrorOutage, MirrorRecover:
			t.Fatalf("edge/mirror event scheduled without targets: %v", e)
		}
	}
	if ComposedFailures(events) == 0 {
		t.Fatal("origin and flash-crowd classes should survive")
	}
}
