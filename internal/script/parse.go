package script

import (
	"errors"
	"fmt"
	"strings"
)

// ErrSyntax wraps all parse errors.
var ErrSyntax = errors.New("script: syntax error")

// Parse parses source text into a Script. The grammar is line-oriented:
//
//	line     := comment | command | if-open | "else" | "fi"
//	comment  := "#" text
//	command  := word+ [ (">" | ">>") word ]
//	if-open  := "if" command ";" "then"
//
// Words may be double- or single-quoted. Blank lines are skipped.
func Parse(src string) (*Script, error) {
	p := &parser{lines: strings.Split(src, "\n")}
	nodes, err := p.block("")
	if err != nil {
		return nil, err
	}
	if p.pos < len(p.lines) {
		return nil, fmt.Errorf("%w: line %d: unexpected %q", ErrSyntax, p.pos+1, strings.TrimSpace(p.lines[p.pos]))
	}
	return &Script{Nodes: nodes}, nil
}

// MustParse is Parse for statically known sources; it panics on error.
func MustParse(src string) *Script {
	s, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return s
}

type parser struct {
	lines []string
	pos   int
}

// block parses nodes until the terminator keyword (or EOF when
// terminator is ""). It leaves the terminator line unconsumed.
func (p *parser) block(terminator string) ([]Node, error) {
	var nodes []Node
	for p.pos < len(p.lines) {
		raw := p.lines[p.pos]
		line := strings.TrimSpace(raw)
		if line == "" {
			p.pos++
			continue
		}
		if strings.HasPrefix(line, "#") {
			nodes = append(nodes, &Comment{Text: line[1:]})
			p.pos++
			continue
		}
		word := firstWord(line)
		switch word {
		case "fi", "else":
			if terminator == "" {
				return nil, fmt.Errorf("%w: line %d: %q outside if", ErrSyntax, p.pos+1, word)
			}
			return nodes, nil
		case "if":
			n, err := p.parseIf()
			if err != nil {
				return nil, err
			}
			nodes = append(nodes, n)
		case "then":
			return nil, fmt.Errorf("%w: line %d: unexpected 'then'", ErrSyntax, p.pos+1)
		default:
			cmd, err := parseCommand(line, p.pos+1)
			if err != nil {
				return nil, err
			}
			nodes = append(nodes, cmd)
			p.pos++
		}
	}
	if terminator != "" {
		return nil, fmt.Errorf("%w: unexpected end of script, expected %q", ErrSyntax, terminator)
	}
	return nodes, nil
}

// parseIf parses `if <cond>; then` ... `else` ... `fi`.
func (p *parser) parseIf() (*If, error) {
	line := strings.TrimSpace(p.lines[p.pos])
	lineno := p.pos + 1
	rest := strings.TrimPrefix(line, "if")
	rest = strings.TrimSpace(rest)
	idx := strings.LastIndex(rest, ";")
	if idx < 0 || strings.TrimSpace(rest[idx+1:]) != "then" {
		return nil, fmt.Errorf("%w: line %d: 'if' must end with '; then'", ErrSyntax, lineno)
	}
	cond, err := parseCommand(strings.TrimSpace(rest[:idx]), lineno)
	if err != nil {
		return nil, err
	}
	p.pos++
	thenNodes, err := p.block("fi")
	if err != nil {
		return nil, err
	}
	var elseNodes []Node
	if p.pos < len(p.lines) && firstWord(strings.TrimSpace(p.lines[p.pos])) == "else" {
		p.pos++
		elseNodes, err = p.block("fi")
		if err != nil {
			return nil, err
		}
	}
	if p.pos >= len(p.lines) || firstWord(strings.TrimSpace(p.lines[p.pos])) != "fi" {
		return nil, fmt.Errorf("%w: line %d: missing 'fi'", ErrSyntax, lineno)
	}
	p.pos++
	return &If{Cond: cond, Then: thenNodes, Else: elseNodes}, nil
}

// parseCommand tokenizes a simple command with optional redirection.
func parseCommand(line string, lineno int) (*Command, error) {
	tokens, err := tokenize(line)
	if err != nil {
		return nil, fmt.Errorf("%w: line %d: %v", ErrSyntax, lineno, err)
	}
	if len(tokens) == 0 {
		return nil, fmt.Errorf("%w: line %d: empty command", ErrSyntax, lineno)
	}
	cmd := &Command{Name: tokens[0]}
	i := 1
	for i < len(tokens) {
		switch tokens[i] {
		case ">", ">>":
			if i+1 >= len(tokens) {
				return nil, fmt.Errorf("%w: line %d: redirection without target", ErrSyntax, lineno)
			}
			if i+2 != len(tokens) {
				return nil, fmt.Errorf("%w: line %d: tokens after redirection target", ErrSyntax, lineno)
			}
			cmd.RedirectTo = tokens[i+1]
			cmd.Append = tokens[i] == ">>"
			return cmd, nil
		default:
			cmd.Args = append(cmd.Args, tokens[i])
			i++
		}
	}
	return cmd, nil
}

// tokenize splits a line into words honoring single and double quotes.
// The redirection operators ">" and ">>" are returned as separate tokens
// even without surrounding spaces.
func tokenize(line string) ([]string, error) {
	var tokens []string
	var cur strings.Builder
	started := false
	flush := func() {
		if started {
			tokens = append(tokens, cur.String())
			cur.Reset()
			started = false
		}
	}
	for i := 0; i < len(line); i++ {
		c := line[i]
		switch c {
		case ' ', '\t':
			flush()
		case '\'', '"':
			quote := c
			j := i + 1
			for j < len(line) && line[j] != quote {
				j++
			}
			if j >= len(line) {
				return nil, fmt.Errorf("unterminated quote")
			}
			cur.WriteString(line[i+1 : j])
			started = true
			i = j
		case '>':
			flush()
			if i+1 < len(line) && line[i+1] == '>' {
				tokens = append(tokens, ">>")
				i++
			} else {
				tokens = append(tokens, ">")
			}
		case '#':
			// Inline comment terminates the command.
			flush()
			return tokens, nil
		default:
			cur.WriteByte(c)
			started = true
		}
	}
	flush()
	return tokens, nil
}

func firstWord(line string) string {
	for i := 0; i < len(line); i++ {
		if line[i] == ' ' || line[i] == '\t' || line[i] == ';' {
			return line[:i]
		}
	}
	return line
}
