package script

import (
	"encoding/hex"
	"errors"
	"fmt"
	"strconv"
	"strings"
)

// ErrExec wraps all interpreter execution errors.
var ErrExec = errors.New("script: execution error")

// User describes an account created by adduser, mirroring the fields of
// an /etc/passwd and /etc/shadow line.
type User struct {
	Name   string
	UID    int
	GID    int
	Gecos  string
	Home   string
	Shell  string
	System bool
	// NoPassword marks an account created or modified to have an EMPTY
	// password — the CVE-2019-5021 class of misconfiguration the paper's
	// sanitizer detected in two Alpine packages.
	NoPassword bool
}

// Group describes a group created by addgroup.
type Group struct {
	Name   string
	GID    int
	System bool
}

// System is the set of OS effects the interpreter can apply. It is
// implemented by the integrity-enforced OS image (package osimage) and by
// the sanitizer's configuration predictor.
type System interface {
	// MkdirAll creates a directory and missing parents.
	MkdirAll(path string, mode uint32) error
	// Remove deletes a path; recursive selects rm -r semantics.
	Remove(path string, recursive bool) error
	// Rename moves a file or directory.
	Rename(oldPath, newPath string) error
	// Copy duplicates a regular file.
	Copy(src, dst string) error
	// Symlink creates a symbolic link.
	Symlink(target, link string) error
	// Chmod changes permission bits.
	Chmod(path string, mode uint32) error
	// Chown changes ownership.
	Chown(path, owner string) error
	// Touch creates an empty file if absent.
	Touch(path string) error
	// WriteFile writes (or appends) data to a file.
	WriteFile(path string, data []byte, appendTo bool) error
	// ReadFile reads a file.
	ReadFile(path string) ([]byte, error)
	// Exists reports whether a path exists.
	Exists(path string) bool
	// AddUser creates a user account.
	AddUser(u User) error
	// AddGroup creates a group.
	AddGroup(g Group) error
	// SetPassword sets a user's password hash; an empty hash means an
	// empty (passwordless) login.
	SetPassword(name, hash string) error
	// AddShell registers a login shell in /etc/shells.
	AddShell(path string) error
	// SetXattr sets an extended attribute on a file. The sanitizer's
	// rewritten scripts use it (via setfattr) to install the predicted
	// configuration files' IMA signatures in the target OS (§4.2).
	SetXattr(path, name string, value []byte) error
}

// Exec runs the script against sys. Execution stops at the first error,
// or immediately (without error) at an `exit 0` command.
func Exec(s *Script, sys System) error {
	_, err := execNodes(s.Nodes, sys)
	return err
}

// execNodes returns stop=true when an exit command was reached.
func execNodes(nodes []Node, sys System) (stop bool, err error) {
	for _, n := range nodes {
		switch v := n.(type) {
		case *Comment:
			// no effect
		case *Command:
			stop, err = execCommand(v, sys)
			if err != nil || stop {
				return stop, err
			}
		case *If:
			taken, err := evalCond(v.Cond, sys)
			if err != nil {
				return false, err
			}
			branch := v.Then
			if !taken {
				branch = v.Else
			}
			stop, err = execNodes(branch, sys)
			if err != nil || stop {
				return stop, err
			}
		default:
			return false, fmt.Errorf("%w: unknown node %T", ErrExec, n)
		}
	}
	return false, nil
}

// evalCond evaluates an if condition command.
func evalCond(c *Command, sys System) (bool, error) {
	switch c.Name {
	case "true":
		return true, nil
	case "false":
		return false, nil
	case "[", "test":
		args := c.Args
		if c.Name == "[" {
			if len(args) == 0 || args[len(args)-1] != "]" {
				return false, fmt.Errorf("%w: '[' without closing ']'", ErrExec)
			}
			args = args[:len(args)-1]
		}
		return evalTest(args, sys)
	case "command":
		// `command -v name`: treat common base utilities as present.
		if len(c.Args) == 2 && c.Args[0] == "-v" {
			return sys.Exists("/usr/bin/"+c.Args[1]) || sys.Exists("/bin/"+c.Args[1]), nil
		}
		return false, fmt.Errorf("%w: unsupported command form %v", ErrExec, c.Args)
	default:
		return false, fmt.Errorf("%w: unsupported condition %q", ErrExec, c.Name)
	}
}

// evalTest implements the test(1) subset: -f/-d/-e path, ! expr,
// s1 = s2, s1 != s2.
func evalTest(args []string, sys System) (bool, error) {
	if len(args) > 0 && args[0] == "!" {
		v, err := evalTest(args[1:], sys)
		return !v, err
	}
	switch {
	case len(args) == 2 && (args[0] == "-f" || args[0] == "-e"):
		return sys.Exists(args[1]), nil
	case len(args) == 2 && args[0] == "-d":
		return sys.Exists(args[1]), nil
	case len(args) == 3 && args[1] == "=":
		return args[0] == args[2], nil
	case len(args) == 3 && args[1] == "!=":
		return args[0] != args[2], nil
	case len(args) == 1:
		return args[0] != "", nil
	default:
		return false, fmt.Errorf("%w: unsupported test %v", ErrExec, args)
	}
}

// execCommand applies one command. It returns stop=true for `exit`.
func execCommand(c *Command, sys System) (bool, error) {
	if c.RedirectTo != "" {
		return false, execRedirect(c, sys)
	}
	switch c.Name {
	case "exit":
		return true, nil
	case "true", ":", "echo", "printf", "[", "test", "command", "which":
		return false, nil
	case "mkdir":
		for _, p := range nonFlagArgs(c.Args) {
			if err := sys.MkdirAll(p, 0o755); err != nil {
				return false, wrapExec(c, err)
			}
		}
		return false, nil
	case "rmdir":
		for _, p := range nonFlagArgs(c.Args) {
			if err := sys.Remove(p, false); err != nil {
				return false, wrapExec(c, err)
			}
		}
		return false, nil
	case "rm":
		recursive := hasFlag(c.Args, "-r") || hasFlag(c.Args, "-rf") || hasFlag(c.Args, "-fr")
		force := recursive || hasFlag(c.Args, "-f")
		for _, p := range nonFlagArgs(c.Args) {
			err := sys.Remove(p, recursive)
			if err != nil && !force {
				return false, wrapExec(c, err)
			}
		}
		return false, nil
	case "mv":
		paths := nonFlagArgs(c.Args)
		if len(paths) != 2 {
			return false, fmt.Errorf("%w: mv wants 2 paths, got %v", ErrExec, paths)
		}
		return false, wrapExec(c, sys.Rename(paths[0], paths[1]))
	case "cp":
		paths := nonFlagArgs(c.Args)
		if len(paths) != 2 {
			return false, fmt.Errorf("%w: cp wants 2 paths, got %v", ErrExec, paths)
		}
		return false, wrapExec(c, sys.Copy(paths[0], paths[1]))
	case "ln":
		paths := nonFlagArgs(c.Args)
		if len(paths) != 2 {
			return false, fmt.Errorf("%w: ln wants 2 paths, got %v", ErrExec, paths)
		}
		return false, wrapExec(c, sys.Symlink(paths[0], paths[1]))
	case "chmod":
		paths := nonFlagArgs(c.Args)
		if len(paths) < 2 {
			return false, fmt.Errorf("%w: chmod wants mode and path", ErrExec)
		}
		mode, err := strconv.ParseUint(paths[0], 8, 32)
		if err != nil {
			return false, fmt.Errorf("%w: chmod mode %q: %v", ErrExec, paths[0], err)
		}
		for _, p := range paths[1:] {
			if err := sys.Chmod(p, uint32(mode)); err != nil {
				return false, wrapExec(c, err)
			}
		}
		return false, nil
	case "chown":
		paths := nonFlagArgs(c.Args)
		if len(paths) < 2 {
			return false, fmt.Errorf("%w: chown wants owner and path", ErrExec)
		}
		for _, p := range paths[1:] {
			if err := sys.Chown(p, paths[0]); err != nil {
				return false, wrapExec(c, err)
			}
		}
		return false, nil
	case "install":
		// install -d DIR...: directory creation form only.
		if hasFlag(c.Args, "-d") {
			for _, p := range nonFlagArgs(c.Args) {
				if err := sys.MkdirAll(p, 0o755); err != nil {
					return false, wrapExec(c, err)
				}
			}
			return false, nil
		}
		paths := nonFlagArgs(c.Args)
		if len(paths) == 2 {
			return false, wrapExec(c, sys.Copy(paths[0], paths[1]))
		}
		return false, fmt.Errorf("%w: unsupported install form %v", ErrExec, c.Args)
	case "touch":
		for _, p := range nonFlagArgs(c.Args) {
			if err := sys.Touch(p); err != nil {
				return false, wrapExec(c, err)
			}
		}
		return false, nil
	case "sed":
		return false, wrapExec(c, execSed(c.Args, sys))
	case "grep", "cat", "head", "tail", "cut", "awk", "sort", "wc", "tr":
		// Text processing: read the input files; output is discarded.
		for _, p := range nonFlagArgs(c.Args) {
			if strings.HasPrefix(p, "/") {
				if _, err := sys.ReadFile(p); err != nil {
					return false, wrapExec(c, err)
				}
			}
		}
		return false, nil
	case "adduser":
		u, err := ParseAddUser(c.Args)
		if err != nil {
			return false, err
		}
		return false, wrapExec(c, sys.AddUser(u))
	case "addgroup":
		g, err := ParseAddGroup(c.Args)
		if err != nil {
			return false, err
		}
		return false, wrapExec(c, sys.AddGroup(g))
	case "passwd":
		name, hash, err := ParsePasswd(c.Args)
		if err != nil {
			return false, err
		}
		return false, wrapExec(c, sys.SetPassword(name, hash))
	case "add-shell":
		if len(c.Args) != 1 {
			return false, fmt.Errorf("%w: add-shell wants one path", ErrExec)
		}
		return false, wrapExec(c, sys.AddShell(c.Args[0]))
	case "setfattr":
		path, name, value, err := ParseSetfattr(c.Args)
		if err != nil {
			return false, err
		}
		return false, wrapExec(c, sys.SetXattr(path, name, value))
	default:
		return false, fmt.Errorf("%w: unknown command %q", ErrExec, c.Name)
	}
}

// execRedirect handles `cmd ... > file` and `cmd ... >> file`. Only echo
// and printf redirections are supported; they write their joined
// arguments plus a newline.
func execRedirect(c *Command, sys System) error {
	switch c.Name {
	case "echo", "printf":
		data := []byte(strings.Join(c.Args, " ") + "\n")
		if len(c.Args) == 0 || (len(c.Args) == 1 && c.Args[0] == "-n") {
			data = nil // `echo -n > f` / `> f`: truncate to empty
		}
		return sys.WriteFile(c.RedirectTo, data, c.Append)
	default:
		return fmt.Errorf("%w: unsupported redirection from %q", ErrExec, c.Name)
	}
}

// execSed supports the s/old/new/[g] substitution form. With -i the file
// is rewritten in place (a configuration change); without -i the file is
// only read.
func execSed(args []string, sys System) error {
	inPlace := hasFlag(args, "-i")
	rest := nonFlagArgs(args)
	if len(rest) != 2 {
		return fmt.Errorf("%w: sed wants expression and file, got %v", ErrExec, rest)
	}
	expr, file := rest[0], rest[1]
	old, repl, err := parseSedExpr(expr)
	if err != nil {
		return err
	}
	content, err := sys.ReadFile(file)
	if err != nil {
		return err
	}
	if !inPlace {
		return nil
	}
	return sys.WriteFile(file, []byte(strings.ReplaceAll(string(content), old, repl)), false)
}

// parseSedExpr parses "s/old/new/" with an arbitrary delimiter after 's'.
func parseSedExpr(expr string) (old, repl string, err error) {
	if len(expr) < 4 || expr[0] != 's' {
		return "", "", fmt.Errorf("%w: unsupported sed expression %q", ErrExec, expr)
	}
	delim := string(expr[1])
	parts := strings.Split(expr[2:], delim)
	if len(parts) < 2 {
		return "", "", fmt.Errorf("%w: unsupported sed expression %q", ErrExec, expr)
	}
	return parts[0], parts[1], nil
}

// ParseAddUser parses busybox-style adduser arguments:
//
//	adduser [-S] [-D] [-H] [-h HOME] [-s SHELL] [-g GECOS] [-G GROUP] [-u UID] NAME
//
// UID and GID default to -1, meaning the System assigns the next free id.
func ParseAddUser(args []string) (User, error) {
	u := User{Home: "", Shell: "/sbin/nologin", UID: -1, GID: -1}
	var group string
	i := 0
	for i < len(args) {
		a := args[i]
		switch a {
		case "-S":
			u.System = true
			i++
		case "-D":
			u.NoPassword = true
			i++
		case "-H":
			u.Home = "/nonexistent"
			i++
		case "-h", "-s", "-g", "-G", "-u":
			if i+1 >= len(args) {
				return User{}, fmt.Errorf("%w: adduser flag %q needs a value", ErrExec, a)
			}
			v := args[i+1]
			switch a {
			case "-h":
				u.Home = v
			case "-s":
				u.Shell = v
			case "-g":
				u.Gecos = v
			case "-G":
				group = v
			case "-u":
				uid, err := strconv.Atoi(v)
				if err != nil {
					return User{}, fmt.Errorf("%w: adduser uid %q", ErrExec, v)
				}
				u.UID = uid
			}
			i += 2
		default:
			if strings.HasPrefix(a, "-") {
				return User{}, fmt.Errorf("%w: adduser unknown flag %q", ErrExec, a)
			}
			if u.Name != "" {
				return User{}, fmt.Errorf("%w: adduser multiple names %q %q", ErrExec, u.Name, a)
			}
			u.Name = a
			i++
		}
	}
	if u.Name == "" {
		return User{}, fmt.Errorf("%w: adduser without user name", ErrExec)
	}
	if u.Home == "" {
		u.Home = "/home/" + u.Name
	}
	if u.Gecos == "" {
		u.Gecos = u.Name
	}
	_ = group // group membership is resolved by the System via GID policy
	return u, nil
}

// ParseAddGroup parses `addgroup [-S] [-g GID] NAME`.
func ParseAddGroup(args []string) (Group, error) {
	g := Group{GID: -1}
	i := 0
	for i < len(args) {
		a := args[i]
		switch a {
		case "-S":
			g.System = true
			i++
		case "-g":
			if i+1 >= len(args) {
				return Group{}, fmt.Errorf("%w: addgroup -g needs a value", ErrExec)
			}
			gid, err := strconv.Atoi(args[i+1])
			if err != nil {
				return Group{}, fmt.Errorf("%w: addgroup gid %q", ErrExec, args[i+1])
			}
			g.GID = gid
			i += 2
		default:
			if strings.HasPrefix(a, "-") {
				return Group{}, fmt.Errorf("%w: addgroup unknown flag %q", ErrExec, a)
			}
			if g.Name != "" {
				return Group{}, fmt.Errorf("%w: addgroup multiple names", ErrExec)
			}
			g.Name = a
			i++
		}
	}
	if g.Name == "" {
		return Group{}, fmt.Errorf("%w: addgroup without group name", ErrExec)
	}
	return g, nil
}

// ParsePasswd parses `passwd -d NAME` (delete password — empty login) and
// `passwd -H HASH NAME` (set hash; a simulation-side extension standing in
// for chpasswd).
func ParsePasswd(args []string) (name, hash string, err error) {
	switch {
	case len(args) == 2 && args[0] == "-d":
		return args[1], "", nil
	case len(args) == 3 && args[0] == "-H":
		return args[2], args[1], nil
	default:
		return "", "", fmt.Errorf("%w: unsupported passwd form %v", ErrExec, args)
	}
}

// ParseSetfattr parses `setfattr -n NAME -v HEXVALUE PATH` (the
// attr-tools form restricted to hex values).
func ParseSetfattr(args []string) (path, name string, value []byte, err error) {
	var hexValue string
	i := 0
	for i < len(args) {
		switch args[i] {
		case "-n", "-v":
			if i+1 >= len(args) {
				return "", "", nil, fmt.Errorf("%w: setfattr %s needs a value", ErrExec, args[i])
			}
			if args[i] == "-n" {
				name = args[i+1]
			} else {
				hexValue = args[i+1]
			}
			i += 2
		default:
			if strings.HasPrefix(args[i], "-") {
				return "", "", nil, fmt.Errorf("%w: setfattr unknown flag %q", ErrExec, args[i])
			}
			if path != "" {
				return "", "", nil, fmt.Errorf("%w: setfattr multiple paths", ErrExec)
			}
			path = args[i]
			i++
		}
	}
	if path == "" || name == "" || hexValue == "" {
		return "", "", nil, fmt.Errorf("%w: setfattr needs -n, -v and a path", ErrExec)
	}
	value, decErr := hex.DecodeString(hexValue)
	if decErr != nil {
		return "", "", nil, fmt.Errorf("%w: setfattr value not hex: %v", ErrExec, decErr)
	}
	return path, name, value, nil
}

func wrapExec(c *Command, err error) error {
	if err == nil {
		return nil
	}
	return fmt.Errorf("%w: %s: %v", ErrExec, c.Name, err)
}

// nonFlagArgs returns the arguments that do not start with '-'.
func nonFlagArgs(args []string) []string {
	var out []string
	for _, a := range args {
		if !strings.HasPrefix(a, "-") {
			out = append(out, a)
		}
	}
	return out
}
