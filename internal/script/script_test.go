package script

import (
	"errors"
	"fmt"
	"strings"
	"testing"
	"testing/quick"
)

func TestParseSimpleCommands(t *testing.T) {
	s, err := Parse("mkdir -p /var/lib/ntp\nchown ntp /var/lib/ntp\n")
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Nodes) != 2 {
		t.Fatalf("nodes = %d", len(s.Nodes))
	}
	c0 := s.Nodes[0].(*Command)
	if c0.Name != "mkdir" || len(c0.Args) != 2 || c0.Args[0] != "-p" || c0.Args[1] != "/var/lib/ntp" {
		t.Fatalf("c0 = %+v", c0)
	}
}

func TestParseQuotes(t *testing.T) {
	s, err := Parse(`adduser -g "NTP daemon" -s /sbin/nologin ntp` + "\n")
	if err != nil {
		t.Fatal(err)
	}
	c := s.Nodes[0].(*Command)
	if c.Args[1] != "NTP daemon" {
		t.Fatalf("quoted arg = %q", c.Args[1])
	}
	s2, err := Parse(`echo 'single quoted arg'`)
	if err != nil {
		t.Fatal(err)
	}
	if got := s2.Nodes[0].(*Command).Args[0]; got != "single quoted arg" {
		t.Fatalf("arg = %q", got)
	}
}

func TestParseUnterminatedQuote(t *testing.T) {
	if _, err := Parse(`echo "oops`); !errors.Is(err, ErrSyntax) {
		t.Fatalf("err = %v", err)
	}
}

func TestParseRedirect(t *testing.T) {
	tests := []struct {
		src    string
		target string
		app    bool
	}{
		{"echo hello > /etc/motd", "/etc/motd", false},
		{"echo hello >> /etc/motd", "/etc/motd", true},
		{"echo x>/etc/f", "/etc/f", false},
	}
	for _, tt := range tests {
		s, err := Parse(tt.src)
		if err != nil {
			t.Fatalf("%q: %v", tt.src, err)
		}
		c := s.Nodes[0].(*Command)
		if c.RedirectTo != tt.target || c.Append != tt.app {
			t.Fatalf("%q: cmd = %+v", tt.src, c)
		}
	}
}

func TestParseRedirectErrors(t *testing.T) {
	for _, src := range []string{"echo >", "echo > f extra"} {
		if _, err := Parse(src); !errors.Is(err, ErrSyntax) {
			t.Errorf("%q: err = %v", src, err)
		}
	}
}

func TestParseComments(t *testing.T) {
	s, err := Parse("# header\nmkdir /x # trailing\n")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Nodes[0].(*Comment); !ok {
		t.Fatalf("node 0 = %T", s.Nodes[0])
	}
	c := s.Nodes[1].(*Command)
	if len(c.Args) != 1 {
		t.Fatalf("trailing comment not stripped: %+v", c)
	}
}

func TestParseIfElse(t *testing.T) {
	src := `if [ -f /etc/conf ]; then
	echo exists
else
	touch /etc/conf
fi
`
	s, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	n := s.Nodes[0].(*If)
	if n.Cond.Name != "[" || len(n.Then) != 1 || len(n.Else) != 1 {
		t.Fatalf("if = %+v", n)
	}
}

func TestParseNestedIf(t *testing.T) {
	src := `if true; then
if false; then
echo a
fi
fi
`
	s, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	outer := s.Nodes[0].(*If)
	if _, ok := outer.Then[0].(*If); !ok {
		t.Fatalf("inner = %T", outer.Then[0])
	}
}

func TestParseIfErrors(t *testing.T) {
	for _, src := range []string{
		"if true\necho x\nfi",   // missing '; then'
		"if true; then\necho x", // missing fi
		"fi",                    // stray fi
		"else",                  // stray else
		"then",                  // stray then
	} {
		if _, err := Parse(src); !errors.Is(err, ErrSyntax) {
			t.Errorf("%q: err = %v", src, err)
		}
	}
}

func TestRenderParseRoundtrip(t *testing.T) {
	src := `# setup ntp
addgroup -S ntp
adduser -S -G ntp -g "NTP daemon" -s /sbin/nologin ntp
if [ -f /etc/ntp.conf ]; then
	echo found
else
	touch /etc/ntp.conf
fi
mkdir -p /var/lib/ntp
`
	s1, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	r1 := s1.Render()
	s2, err := Parse(r1)
	if err != nil {
		t.Fatalf("reparse: %v\nrendered:\n%s", err, r1)
	}
	if r2 := s2.Render(); r1 != r2 {
		t.Fatalf("render not a fixpoint:\n%q\nvs\n%q", r1, r2)
	}
}

func TestRenderQuotesSpecialTokens(t *testing.T) {
	s := &Script{Nodes: []Node{&Command{Name: "adduser", Args: []string{"-g", "has space", "u"}}}}
	r := s.Render()
	if !strings.Contains(r, `"has space"`) {
		t.Fatalf("render = %q", r)
	}
	if _, err := Parse(r); err != nil {
		t.Fatalf("reparse: %v", err)
	}
}

func TestCommandsWalksBothBranches(t *testing.T) {
	src := `if true; then
adduser a
else
addgroup b
fi
`
	s := MustParse(src)
	cmds := s.Commands()
	// cond + adduser + addgroup
	if len(cmds) != 3 {
		t.Fatalf("commands = %d", len(cmds))
	}
}

func TestClassifyTable2Categories(t *testing.T) {
	tests := []struct {
		src  string
		want OpClass
	}{
		{"mkdir -p /var/lib/x", OpFilesystem},
		{"rm -rf /tmp/x", OpFilesystem},
		{"ln -s /usr/bin/x /usr/local/bin/x", OpFilesystem},
		{"chmod 755 /usr/bin/x", OpFilesystem},
		{"echo done", OpEmpty},
		{"exit 0", OpEmpty},
		{"grep root /etc/passwd", OpTextProcessing},
		{"sed s/a/b/ /etc/conf", OpTextProcessing},
		{"sed -i s/a/b/ /etc/conf", OpConfigChange},
		{"echo line > /etc/conf", OpConfigChange},
		{"frobnicate --hard", OpConfigChange}, // unknown command: worst case
		{"touch /var/run/x.pid", OpEmptyFile},
		{"adduser -S ntp", OpUserGroup},
		{"addgroup -S ntp", OpUserGroup},
		{"passwd -d root", OpUserGroup},
		{"add-shell /bin/bash", OpShellActivation},
	}
	for _, tt := range tests {
		s := MustParse(tt.src)
		set := Classify(s)
		if len(set) != 1 || !set[tt.want] {
			t.Errorf("%q: classes = %v, want {%v}", tt.src, set, tt.want)
		}
	}
}

func TestClassifyEmptyScript(t *testing.T) {
	for _, src := range []string{"", "# only a comment\n", "\n\n"} {
		set := Classify(MustParse(src))
		if len(set) != 1 || !set[OpEmpty] {
			t.Errorf("%q: classes = %v", src, set)
		}
	}
}

func TestClassifyMixed(t *testing.T) {
	src := `addgroup -S ntp
adduser -S -G ntp ntp
mkdir -p /var/lib/ntp
`
	set := Classify(MustParse(src))
	if !set[OpUserGroup] || !set[OpFilesystem] || len(set) != 2 {
		t.Fatalf("classes = %v", set)
	}
}

func TestClassifyConditionalBranches(t *testing.T) {
	// A config change hidden in an else branch must still be found.
	src := `if true; then
	echo ok
else
	sed -i s/a/b/ /etc/conf
fi
`
	set := Classify(MustParse(src))
	if !set[OpConfigChange] {
		t.Fatalf("classes = %v, want OpConfigChange found", set)
	}
}

func TestSafetyTables(t *testing.T) {
	// Mirrors Table 2's Safe and TSR columns exactly.
	tests := []struct {
		c         OpClass
		safe, tsr bool
	}{
		{OpFilesystem, true, true},
		{OpEmpty, true, true},
		{OpTextProcessing, true, true},
		{OpConfigChange, false, false},
		{OpEmptyFile, false, true},
		{OpUserGroup, false, true},
		{OpShellActivation, false, false},
	}
	for _, tt := range tests {
		if got := tt.c.SafeBeforeTSR(); got != tt.safe {
			t.Errorf("%v.SafeBeforeTSR = %v, want %v", tt.c, got, tt.safe)
		}
		if got := tt.c.SafeAfterTSR(); got != tt.tsr {
			t.Errorf("%v.SafeAfterTSR = %v, want %v", tt.c, got, tt.tsr)
		}
	}
}

func TestClassSetSafety(t *testing.T) {
	safe := ClassSet{OpFilesystem: true, OpEmpty: true}
	if !safe.SafeBeforeTSR() || !safe.SafeAfterTSR() {
		t.Fatal("safe set misclassified")
	}
	sanitizable := ClassSet{OpUserGroup: true, OpFilesystem: true}
	if sanitizable.SafeBeforeTSR() {
		t.Fatal("user/group set should be unsafe before TSR")
	}
	if !sanitizable.SafeAfterTSR() {
		t.Fatal("user/group set should be safe after TSR")
	}
	unsupported := ClassSet{OpShellActivation: true}
	if unsupported.SafeAfterTSR() {
		t.Fatal("shell activation must stay unsupported")
	}
}

func TestOpClassStrings(t *testing.T) {
	if OpUserGroup.String() != "User/Group creation" {
		t.Fatalf("got %q", OpUserGroup.String())
	}
	if OpClass(42).String() != "OpClass(42)" {
		t.Fatal("unknown class string")
	}
	if len(AllOpClasses()) != 7 {
		t.Fatal("Table 2 has 7 operation classes")
	}
}

// fakeSystem records interpreter effects for assertions.
type fakeSystem struct {
	files   map[string][]byte
	dirs    map[string]bool
	users   []User
	groups  []Group
	shells  []string
	passwd  map[string]string
	chmods  map[string]uint32
	chowns  map[string]string
	symlink map[string]string
	xattrs  map[string][]byte
}

func newFakeSystem() *fakeSystem {
	return &fakeSystem{
		files:   map[string][]byte{},
		dirs:    map[string]bool{},
		passwd:  map[string]string{},
		chmods:  map[string]uint32{},
		chowns:  map[string]string{},
		symlink: map[string]string{},
	}
}

func (f *fakeSystem) MkdirAll(p string, mode uint32) error { f.dirs[p] = true; return nil }
func (f *fakeSystem) Remove(p string, rec bool) error {
	if _, ok := f.files[p]; !ok && !f.dirs[p] {
		return fmt.Errorf("missing %q", p)
	}
	delete(f.files, p)
	delete(f.dirs, p)
	return nil
}
func (f *fakeSystem) Rename(o, n string) error {
	v, ok := f.files[o]
	if !ok {
		return fmt.Errorf("missing %q", o)
	}
	f.files[n] = v
	delete(f.files, o)
	return nil
}
func (f *fakeSystem) Copy(s, d string) error {
	v, ok := f.files[s]
	if !ok {
		return fmt.Errorf("missing %q", s)
	}
	f.files[d] = append([]byte(nil), v...)
	return nil
}
func (f *fakeSystem) Symlink(tgt, link string) error { f.symlink[link] = tgt; return nil }
func (f *fakeSystem) Chmod(p string, m uint32) error { f.chmods[p] = m; return nil }
func (f *fakeSystem) Chown(p, o string) error        { f.chowns[p] = o; return nil }
func (f *fakeSystem) Touch(p string) error {
	if _, ok := f.files[p]; !ok {
		f.files[p] = nil
	}
	return nil
}
func (f *fakeSystem) WriteFile(p string, d []byte, app bool) error {
	if app {
		f.files[p] = append(f.files[p], d...)
	} else {
		f.files[p] = append([]byte(nil), d...)
	}
	return nil
}
func (f *fakeSystem) ReadFile(p string) ([]byte, error) {
	v, ok := f.files[p]
	if !ok {
		return nil, fmt.Errorf("missing %q", p)
	}
	return v, nil
}
func (f *fakeSystem) Exists(p string) bool {
	_, ok := f.files[p]
	return ok || f.dirs[p]
}
func (f *fakeSystem) AddUser(u User) error          { f.users = append(f.users, u); return nil }
func (f *fakeSystem) AddGroup(g Group) error        { f.groups = append(f.groups, g); return nil }
func (f *fakeSystem) SetPassword(n, h string) error { f.passwd[n] = h; return nil }
func (f *fakeSystem) AddShell(p string) error       { f.shells = append(f.shells, p); return nil }
func (f *fakeSystem) SetXattr(p, n string, v []byte) error {
	if f.xattrs == nil {
		f.xattrs = map[string][]byte{}
	}
	f.xattrs[p+"\x00"+n] = append([]byte(nil), v...)
	return nil
}

func TestExecFilesystemOps(t *testing.T) {
	sys := newFakeSystem()
	src := `mkdir -p /var/lib/ntp
touch /var/lib/ntp/drift
chmod 600 /var/lib/ntp/drift
chown ntp /var/lib/ntp/drift
ln -s /usr/bin/real /usr/bin/alias
`
	if err := Exec(MustParse(src), sys); err != nil {
		t.Fatal(err)
	}
	if !sys.dirs["/var/lib/ntp"] {
		t.Fatal("mkdir missing")
	}
	if _, ok := sys.files["/var/lib/ntp/drift"]; !ok {
		t.Fatal("touch missing")
	}
	if sys.chmods["/var/lib/ntp/drift"] != 0o600 {
		t.Fatalf("chmod = %o", sys.chmods["/var/lib/ntp/drift"])
	}
	if sys.chowns["/var/lib/ntp/drift"] != "ntp" {
		t.Fatal("chown missing")
	}
	if sys.symlink["/usr/bin/alias"] != "/usr/bin/real" {
		t.Fatal("ln missing")
	}
}

func TestExecUserGroup(t *testing.T) {
	sys := newFakeSystem()
	src := `addgroup -S -g 123 ntp
adduser -S -G ntp -u 123 -g "NTP daemon" -s /sbin/nologin -h /var/empty ntp
`
	if err := Exec(MustParse(src), sys); err != nil {
		t.Fatal(err)
	}
	if len(sys.groups) != 1 || sys.groups[0].Name != "ntp" || sys.groups[0].GID != 123 || !sys.groups[0].System {
		t.Fatalf("groups = %+v", sys.groups)
	}
	u := sys.users[0]
	if u.Name != "ntp" || u.UID != 123 || u.Gecos != "NTP daemon" || u.Shell != "/sbin/nologin" || u.Home != "/var/empty" {
		t.Fatalf("user = %+v", u)
	}
}

func TestExecAddUserDefaults(t *testing.T) {
	sys := newFakeSystem()
	if err := Exec(MustParse("adduser bob"), sys); err != nil {
		t.Fatal(err)
	}
	u := sys.users[0]
	if u.Home != "/home/bob" || u.UID != -1 || u.Shell != "/sbin/nologin" || u.Gecos != "bob" {
		t.Fatalf("user = %+v", u)
	}
}

func TestExecPasswdEmpty(t *testing.T) {
	sys := newFakeSystem()
	if err := Exec(MustParse("passwd -d alice"), sys); err != nil {
		t.Fatal(err)
	}
	if h, ok := sys.passwd["alice"]; !ok || h != "" {
		t.Fatalf("passwd = %+v", sys.passwd)
	}
}

func TestExecAddShell(t *testing.T) {
	sys := newFakeSystem()
	if err := Exec(MustParse("add-shell /bin/bash"), sys); err != nil {
		t.Fatal(err)
	}
	if len(sys.shells) != 1 || sys.shells[0] != "/bin/bash" {
		t.Fatalf("shells = %v", sys.shells)
	}
}

func TestExecRedirect(t *testing.T) {
	sys := newFakeSystem()
	src := `echo session_key=abc > /etc/app.conf
echo more >> /etc/app.conf
`
	if err := Exec(MustParse(src), sys); err != nil {
		t.Fatal(err)
	}
	if got := string(sys.files["/etc/app.conf"]); got != "session_key=abc\nmore\n" {
		t.Fatalf("content = %q", got)
	}
}

func TestExecSedInPlace(t *testing.T) {
	sys := newFakeSystem()
	sys.files["/etc/conf"] = []byte("mode=old\n")
	if err := Exec(MustParse("sed -i s/old/new/ /etc/conf"), sys); err != nil {
		t.Fatal(err)
	}
	if got := string(sys.files["/etc/conf"]); got != "mode=new\n" {
		t.Fatalf("content = %q", got)
	}
}

func TestExecSedReadOnly(t *testing.T) {
	sys := newFakeSystem()
	sys.files["/etc/conf"] = []byte("mode=old\n")
	if err := Exec(MustParse("sed s/old/new/ /etc/conf"), sys); err != nil {
		t.Fatal(err)
	}
	if got := string(sys.files["/etc/conf"]); got != "mode=old\n" {
		t.Fatalf("read-only sed modified file: %q", got)
	}
}

func TestExecConditionTaken(t *testing.T) {
	sys := newFakeSystem()
	sys.files["/etc/conf"] = []byte("x")
	src := `if [ -f /etc/conf ]; then
	touch /tmp/yes
else
	touch /tmp/no
fi
`
	if err := Exec(MustParse(src), sys); err != nil {
		t.Fatal(err)
	}
	if _, ok := sys.files["/tmp/yes"]; !ok {
		t.Fatal("then branch not taken")
	}
	if _, ok := sys.files["/tmp/no"]; ok {
		t.Fatal("else branch wrongly taken")
	}
}

func TestExecConditionNegated(t *testing.T) {
	sys := newFakeSystem()
	src := `if [ ! -f /etc/conf ]; then
	touch /etc/conf
fi
`
	if err := Exec(MustParse(src), sys); err != nil {
		t.Fatal(err)
	}
	if _, ok := sys.files["/etc/conf"]; !ok {
		t.Fatal("negated condition not taken")
	}
}

func TestExecExitStopsScript(t *testing.T) {
	sys := newFakeSystem()
	src := `exit 0
touch /tmp/after
`
	if err := Exec(MustParse(src), sys); err != nil {
		t.Fatal(err)
	}
	if _, ok := sys.files["/tmp/after"]; ok {
		t.Fatal("commands after exit were executed")
	}
}

func TestExecExitInsideIfStopsScript(t *testing.T) {
	sys := newFakeSystem()
	src := `if true; then
	exit 0
fi
touch /tmp/after
`
	if err := Exec(MustParse(src), sys); err != nil {
		t.Fatal(err)
	}
	if _, ok := sys.files["/tmp/after"]; ok {
		t.Fatal("exit inside if did not stop script")
	}
}

func TestExecUnknownCommandFails(t *testing.T) {
	if err := Exec(MustParse("frobnicate"), newFakeSystem()); !errors.Is(err, ErrExec) {
		t.Fatalf("err = %v", err)
	}
}

func TestExecRmForceIgnoresMissing(t *testing.T) {
	sys := newFakeSystem()
	if err := Exec(MustParse("rm -f /missing"), sys); err != nil {
		t.Fatal(err)
	}
	if err := Exec(MustParse("rm /missing"), sys); !errors.Is(err, ErrExec) {
		t.Fatalf("plain rm of missing file: err = %v", err)
	}
}

func TestParseAddUserErrors(t *testing.T) {
	for _, args := range [][]string{
		{},                 // no name
		{"-u", "abc", "x"}, // bad uid
		{"-h"},             // missing value
		{"a", "b"},         // two names
		{"--weird", "x"},   // unknown flag
	} {
		if _, err := ParseAddUser(args); err == nil {
			t.Errorf("args %v: want error", args)
		}
	}
}

func TestParseAddGroupErrors(t *testing.T) {
	for _, args := range [][]string{{}, {"-g", "x", "g"}, {"a", "b"}, {"-z", "g"}} {
		if _, err := ParseAddGroup(args); err == nil {
			t.Errorf("args %v: want error", args)
		}
	}
}

func TestParsePasswdForms(t *testing.T) {
	name, hash, err := ParsePasswd([]string{"-d", "alice"})
	if err != nil || name != "alice" || hash != "" {
		t.Fatalf("got %q %q %v", name, hash, err)
	}
	name, hash, err = ParsePasswd([]string{"-H", "$6$abc", "bob"})
	if err != nil || name != "bob" || hash != "$6$abc" {
		t.Fatalf("got %q %q %v", name, hash, err)
	}
	if _, _, err := ParsePasswd([]string{"alice"}); err == nil {
		t.Fatal("want error")
	}
}

func TestRoundtripProperty(t *testing.T) {
	// Any script built from safe generator tokens survives
	// render -> parse -> render unchanged.
	cmds := []string{
		"mkdir -p /var/lib/app",
		"touch /var/run/app.pid",
		"adduser -S app",
		"addgroup -S app",
		"echo done",
		"rm -rf /tmp/app",
	}
	f := func(picks []uint8) bool {
		var src strings.Builder
		for _, p := range picks {
			src.WriteString(cmds[int(p)%len(cmds)])
			src.WriteByte('\n')
		}
		s1, err := Parse(src.String())
		if err != nil {
			return false
		}
		r1 := s1.Render()
		s2, err := Parse(r1)
		if err != nil {
			return false
		}
		return s2.Render() == r1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestExecSetfattr(t *testing.T) {
	sys := newFakeSystem()
	if err := Exec(MustParse("setfattr -n security.ima -v deadbeef /etc/passwd"), sys); err != nil {
		t.Fatal(err)
	}
	got := sys.xattrs["/etc/passwd\x00security.ima"]
	if len(got) != 4 || got[0] != 0xde || got[3] != 0xef {
		t.Fatalf("xattr = %x", got)
	}
	// setfattr classifies as a safe filesystem operation.
	set := Classify(MustParse("setfattr -n security.ima -v 00 /etc/passwd"))
	if len(set) != 1 || !set[OpFilesystem] {
		t.Fatalf("classes = %v", set)
	}
}

func TestParseSetfattrErrors(t *testing.T) {
	cases := [][]string{
		{"-n", "a"},                         // no value, no path
		{"-n", "a", "-v", "zz", "/p"},       // bad hex
		{"-v", "00", "/p"},                  // missing name
		{"-n", "a", "-v", "00"},             // missing path
		{"-n", "a", "-v", "00", "/p", "/q"}, // two paths
		{"-z", "x"},                         // unknown flag
	}
	for _, args := range cases {
		if _, _, _, err := ParseSetfattr(args); err == nil {
			t.Errorf("args %v: want error", args)
		}
	}
}

// Robustness: Parse never panics on arbitrary input, and when it
// succeeds the rendered form reparses to the same rendering.
func TestParseRobustnessProperty(t *testing.T) {
	f := func(src string) bool {
		s, err := Parse(src)
		if err != nil {
			return true // rejection is fine; panics are not
		}
		r1 := s.Render()
		s2, err := Parse(r1)
		if err != nil {
			return false
		}
		return s2.Render() == r1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
