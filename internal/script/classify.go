package script

import (
	"fmt"
	"sort"
	"strings"
)

// OpClass is an operation class from the paper's Table 2.
type OpClass int

const (
	// OpFilesystem covers add/remove/modify of folders, symbolic links,
	// and their permissions. Safe for OS integrity as defined by IMA.
	OpFilesystem OpClass = iota
	// OpEmpty covers conditional checks and displaying information.
	OpEmpty
	// OpTextProcessing covers read-only text utilities (parsing existing
	// OS configuration without altering any file).
	OpTextProcessing
	// OpConfigChange covers in-place modification of arbitrary existing
	// configuration files. Unsafe, and NOT sanitizable by TSR.
	OpConfigChange
	// OpEmptyFile covers creation of new empty files. Unsafe as-is, but
	// sanitizable (the predicted empty content can be signed).
	OpEmptyFile
	// OpUserGroup covers user and group creation (and password setting).
	// Unsafe as-is, but sanitizable via whole-repository prediction.
	OpUserGroup
	// OpShellActivation covers add-shell. Unsafe, and intentionally NOT
	// sanitized (the paper argues shell installation belongs to initial
	// OS configuration, not updates).
	OpShellActivation
	numOpClasses
)

// String implements fmt.Stringer, matching Table 2 row labels.
func (c OpClass) String() string {
	switch c {
	case OpFilesystem:
		return "Filesystem changes"
	case OpEmpty:
		return "Empty scripts"
	case OpTextProcessing:
		return "Text processing"
	case OpConfigChange:
		return "Configuration change"
	case OpEmptyFile:
		return "Empty file creation"
	case OpUserGroup:
		return "User/Group creation"
	case OpShellActivation:
		return "Shell activation"
	default:
		return fmt.Sprintf("OpClass(%d)", int(c))
	}
}

// AllOpClasses returns every class in Table 2 row order.
func AllOpClasses() []OpClass {
	out := make([]OpClass, numOpClasses)
	for i := range out {
		out[i] = OpClass(i)
	}
	return out
}

// SafeBeforeTSR reports whether the class leaves OS integrity intact
// without sanitization (Table 2 column "Safe").
func (c OpClass) SafeBeforeTSR() bool {
	switch c {
	case OpFilesystem, OpEmpty, OpTextProcessing:
		return true
	default:
		return false
	}
}

// SafeAfterTSR reports whether the class is safe once sanitized
// (Table 2 column "TSR").
func (c OpClass) SafeAfterTSR() bool {
	switch c {
	case OpFilesystem, OpEmpty, OpTextProcessing, OpEmptyFile, OpUserGroup:
		return true
	default:
		return false
	}
}

// ClassSet is a set of operation classes found in a script.
type ClassSet map[OpClass]bool

// Classes returns the members in ascending order.
func (s ClassSet) Classes() []OpClass {
	out := make([]OpClass, 0, len(s))
	for c := range s {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// SafeBeforeTSR reports whether every class in the set is safe without
// sanitization.
func (s ClassSet) SafeBeforeTSR() bool {
	for c := range s {
		if !c.SafeBeforeTSR() {
			return false
		}
	}
	return true
}

// SafeAfterTSR reports whether every class in the set is sanitizable.
func (s ClassSet) SafeAfterTSR() bool {
	for c := range s {
		if !c.SafeAfterTSR() {
			return false
		}
	}
	return true
}

// String renders the set like "{Filesystem changes, User/Group creation}".
func (s ClassSet) String() string {
	parts := make([]string, 0, len(s))
	for _, c := range s.Classes() {
		parts = append(parts, c.String())
	}
	return "{" + strings.Join(parts, ", ") + "}"
}

// textProcessingCommands are read-only text utilities.
var textProcessingCommands = map[string]bool{
	"sed": true, "grep": true, "awk": true, "cut": true, "cat": true,
	"head": true, "tail": true, "sort": true, "wc": true, "tr": true,
}

// filesystemCommands alter filesystem structure without touching
// existing file contents.
var filesystemCommands = map[string]bool{
	"mkdir": true, "rmdir": true, "rm": true, "mv": true, "cp": true,
	"ln": true, "chmod": true, "chown": true, "install": true,
	// setfattr only attaches metadata (IMA signatures); it does not
	// alter file contents, so it is integrity-safe.
	"setfattr": true,
}

// emptyCommands only display information or control flow.
var emptyCommands = map[string]bool{
	"echo": true, "true": true, "exit": true, ":": true, "printf": true,
	"[": true, "test": true, "command": true, "which": true,
}

// userGroupCommands create users/groups or set passwords.
var userGroupCommands = map[string]bool{
	"adduser": true, "addgroup": true, "passwd": true, "deluser": true, "delgroup": true,
}

// configChangeCommands modify existing configuration files in
// unpredictable ways.
var configChangeCommands = map[string]bool{
	"update-conf": true, "setup-timezone": true, "rc-update": true,
}

// ClassifyCommand returns the operation class of a single command.
func ClassifyCommand(c *Command) OpClass {
	switch {
	case c.Name == "add-shell":
		return OpShellActivation
	case userGroupCommands[c.Name]:
		return OpUserGroup
	case c.Name == "touch":
		// Creating a new empty file; its (empty) content is signable.
		return OpEmptyFile
	case configChangeCommands[c.Name]:
		return OpConfigChange
	case c.Name == "sed" && hasFlag(c.Args, "-i"):
		// In-place edit of an existing file: configuration change.
		return OpConfigChange
	case c.RedirectTo != "":
		// Writing command output into a file alters file contents.
		return OpConfigChange
	case filesystemCommands[c.Name]:
		return OpFilesystem
	case textProcessingCommands[c.Name]:
		return OpTextProcessing
	case emptyCommands[c.Name]:
		return OpEmpty
	default:
		// Unknown command: assume the worst (arbitrary config change).
		return OpConfigChange
	}
}

// Classify returns the set of operation classes a script may perform.
// An empty or comment-only script classifies as {OpEmpty}.
func Classify(s *Script) ClassSet {
	set := make(ClassSet)
	for _, c := range s.Commands() {
		set[ClassifyCommand(c)] = true
	}
	if len(set) == 0 {
		set[OpEmpty] = true
	}
	return set
}

func hasFlag(args []string, flag string) bool {
	for _, a := range args {
		if a == flag {
			return true
		}
	}
	return false
}
