// Package script implements the installation-script language of the
// simulated packages: a small, busybox-flavored shell subset that covers
// exactly the operation classes the paper's Table 2 found in Alpine
// packages (filesystem changes, empty scripts, text processing,
// configuration changes, empty-file creation, user/group creation, and
// shell activation).
//
// The package provides a parser, a renderer (so the sanitizer can rewrite
// scripts and re-embed them in packages), a classifier that maps scripts
// to Table 2 operation classes, and an interpreter that applies a script
// to a System (the integrity-enforced OS image).
package script

import (
	"fmt"
	"strings"
)

// Node is a syntax tree node: a Command, an If, or a Comment.
type Node interface {
	// render writes the node's canonical source form.
	render(b *strings.Builder, indent int)
}

// Command is a single simple command, optionally with an output
// redirection.
type Command struct {
	Name string
	Args []string
	// RedirectTo is the target of ">" or ">>" redirection ("" if none).
	RedirectTo string
	// Append selects ">>" over ">".
	Append bool
}

func (c *Command) render(b *strings.Builder, indent int) {
	b.WriteString(strings.Repeat("\t", indent))
	b.WriteString(quoteToken(c.Name))
	for _, a := range c.Args {
		b.WriteByte(' ')
		b.WriteString(quoteToken(a))
	}
	if c.RedirectTo != "" {
		if c.Append {
			b.WriteString(" >> ")
		} else {
			b.WriteString(" > ")
		}
		b.WriteString(quoteToken(c.RedirectTo))
	}
	b.WriteByte('\n')
}

// If is a conditional block: `if <cond>; then ... [else ...] fi`.
type If struct {
	Cond *Command
	Then []Node
	Else []Node
}

func (n *If) render(b *strings.Builder, indent int) {
	b.WriteString(strings.Repeat("\t", indent))
	b.WriteString("if ")
	var cb strings.Builder
	n.Cond.render(&cb, 0)
	b.WriteString(strings.TrimSuffix(cb.String(), "\n"))
	b.WriteString("; then\n")
	for _, s := range n.Then {
		s.render(b, indent+1)
	}
	if len(n.Else) > 0 {
		b.WriteString(strings.Repeat("\t", indent))
		b.WriteString("else\n")
		for _, s := range n.Else {
			s.render(b, indent+1)
		}
	}
	b.WriteString(strings.Repeat("\t", indent))
	b.WriteString("fi\n")
}

// Comment is a "#" line, preserved across parse/render roundtrips.
type Comment struct {
	Text string // without the leading '#'
}

func (c *Comment) render(b *strings.Builder, indent int) {
	b.WriteString(strings.Repeat("\t", indent))
	b.WriteString("#")
	b.WriteString(c.Text)
	b.WriteByte('\n')
}

// Script is a parsed installation script.
type Script struct {
	Nodes []Node
}

// Render returns the canonical source text of the script.
func (s *Script) Render() string {
	var b strings.Builder
	for _, n := range s.Nodes {
		n.render(&b, 0)
	}
	return b.String()
}

// Commands returns every Command in the script in order, descending into
// If branches (both arms, since classification must be conservative about
// what a script *might* do).
func (s *Script) Commands() []*Command {
	var out []*Command
	var walk func(ns []Node)
	walk = func(ns []Node) {
		for _, n := range ns {
			switch v := n.(type) {
			case *Command:
				out = append(out, v)
			case *If:
				out = append(out, v.Cond)
				walk(v.Then)
				walk(v.Else)
			}
		}
	}
	walk(s.Nodes)
	return out
}

// quoteToken quotes a token if it contains characters that would break
// tokenization.
func quoteToken(s string) string {
	if s == "" {
		return `""`
	}
	if strings.ContainsAny(s, " \t\"'><;#") {
		return fmt.Sprintf("%q", s)
	}
	return s
}
