package policy

import (
	"errors"
	"reflect"
	"strings"
	"testing"
	"testing/quick"

	"tsr/internal/keys"
	"tsr/internal/netsim"
)

func signerPEM(t *testing.T, name string) string {
	t.Helper()
	pair := keys.Shared.MustGet(name)
	pem, err := pair.Public().MarshalPEM()
	if err != nil {
		t.Fatal(err)
	}
	// Policies carry keys as |- block scalars, whose canonical form has
	// no trailing newline.
	return strings.TrimRight(string(pem), "\n")
}

func samplePolicy(t *testing.T) *Policy {
	t.Helper()
	return &Policy{
		Mirrors: []Mirror{
			{Hostname: "https://alpinelinux/v3.10/", Location: "Europe"},
			{Hostname: "https://yandex.ru/alpine/v3.10/", Location: "Europe", CertificateChain: "-----BEGIN CERTIFICATE-----\nAAA\n-----END CERTIFICATE-----"},
			{Hostname: "https://ustc.edu.cn/alpine/v3.10/", Location: "Asia"},
		},
		SignerKeys: []string{signerPEM(t, "alpine-4a40"), signerPEM(t, "alpine-524b")},
		InitConfigFiles: []ConfigFile{
			{Path: "/etc/passwd", Content: "root:x:0:0:root:/root:/bin/ash\ndaemon:x:2:2:daemon:/sbin:/sbin/nologin"},
			{Path: "/etc/group", Content: "root:x:0:root"},
		},
	}
}

func TestMarshalParseRoundtrip(t *testing.T) {
	p := samplePolicy(t)
	raw := p.Marshal()
	got, err := Parse(raw)
	if err != nil {
		t.Fatalf("parse error: %v\npolicy:\n%s", err, raw)
	}
	if !reflect.DeepEqual(got, p) {
		t.Fatalf("roundtrip mismatch:\n%+v\nvs\n%+v", got, p)
	}
}

func TestParseListing1Shape(t *testing.T) {
	// The exact shape of the paper's Listing 1 (with the simulation's
	// location field standing in for real-world DNS geography).
	src := `mirrors:
  - hostname: https://alpinelinux/v3.10/
    certificate_chain: |-
      -----BEGIN CERTIFICATE-----
      MIIB
      -----END CERTIFICATE-----
  - hostname: https://yandex.ru/alpine/v3.10/
    location: Europe
signers_keys:
  - |-
` + indent(signerPEM(t, "alpine-4a40"), "    ") + `
init_config_files:
  - path: /etc/passwd
    content: |-
      root:x:0:0:root:/root:/bin/ash
      daemon:x:2:2:daemon:/sbin:/sbin/nologin
`
	p, err := Parse([]byte(src))
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Mirrors) != 2 {
		t.Fatalf("mirrors = %+v", p.Mirrors)
	}
	if !strings.Contains(p.Mirrors[0].CertificateChain, "MIIB") {
		t.Fatalf("cert chain = %q", p.Mirrors[0].CertificateChain)
	}
	if len(p.SignerKeys) != 1 || !strings.Contains(p.SignerKeys[0], "BEGIN PUBLIC KEY") {
		t.Fatalf("signer keys = %v", p.SignerKeys)
	}
	if p.InitConfigFiles[0].Path != "/etc/passwd" {
		t.Fatalf("config = %+v", p.InitConfigFiles)
	}
	if !strings.Contains(p.InitConfigFiles[0].Content, "daemon:x:2:2") {
		t.Fatalf("content = %q", p.InitConfigFiles[0].Content)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
}

func indent(s, prefix string) string {
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	for i := range lines {
		lines[i] = prefix + lines[i]
	}
	return strings.Join(lines, "\n")
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"bogus_section:\n",
		"  indented:\n",
		"mirrors:\n  hostname: x\n", // not a list item
		"mirrors:\n  - hostname: x\n    certificate_chain: inline\n", // not a block
		"signers_keys:\n  - inline\n",                                // not a block scalar
		"init_config_files:\n  - content: |-\n",                      // missing path
		"mirrors:\n  - weird: x\n",                                   // unknown key
	}
	for _, src := range cases {
		if _, err := Parse([]byte(src)); !errors.Is(err, ErrFormat) {
			t.Errorf("%q: err = %v", src, err)
		}
	}
}

func TestValidate(t *testing.T) {
	p := samplePolicy(t)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}

	noMirrors := *p
	noMirrors.Mirrors = nil
	if err := noMirrors.Validate(); !errors.Is(err, ErrInvalid) {
		t.Errorf("no mirrors: err = %v", err)
	}

	dup := *p
	dup.Mirrors = []Mirror{{Hostname: "a"}, {Hostname: "a"}}
	if err := dup.Validate(); !errors.Is(err, ErrInvalid) {
		t.Errorf("duplicate mirrors: err = %v", err)
	}

	noKeys := *p
	noKeys.SignerKeys = nil
	if err := noKeys.Validate(); !errors.Is(err, ErrInvalid) {
		t.Errorf("no keys: err = %v", err)
	}

	badKey := *p
	badKey.SignerKeys = []string{"garbage"}
	if err := badKey.Validate(); !errors.Is(err, ErrInvalid) {
		t.Errorf("bad key: err = %v", err)
	}

	badLoc := *p
	badLoc.Mirrors = []Mirror{{Hostname: "a", Location: "Atlantis"}}
	if err := badLoc.Validate(); !errors.Is(err, ErrInvalid) {
		t.Errorf("bad location: err = %v", err)
	}

	relPath := *p
	relPath.InitConfigFiles = []ConfigFile{{Path: "etc/passwd"}}
	if err := relPath.Validate(); !errors.Is(err, ErrInvalid) {
		t.Errorf("relative config path: err = %v", err)
	}
}

func TestMaxFaulty(t *testing.T) {
	tests := []struct {
		mirrors int
		want    int
	}{
		{0, 0}, {1, 0}, {2, 0}, {3, 1}, {4, 1}, {5, 2}, {9, 4}, {10, 4},
	}
	for _, tt := range tests {
		p := &Policy{Mirrors: make([]Mirror, tt.mirrors)}
		if got := p.MaxFaulty(); got != tt.want {
			t.Errorf("MaxFaulty(%d mirrors) = %d, want %d", tt.mirrors, got, tt.want)
		}
	}
}

func TestSignerRing(t *testing.T) {
	p := samplePolicy(t)
	ring, err := p.SignerRing()
	if err != nil {
		t.Fatal(err)
	}
	if ring.Len() != 2 {
		t.Fatalf("ring size = %d", ring.Len())
	}
	// A signature by a policy signer must verify through the ring.
	pair := keys.Shared.MustGet("alpine-4a40")
	sig, err := pair.Sign([]byte("data"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ring.VerifyAny([]byte("data"), sig); err != nil {
		t.Fatal(err)
	}
}

func TestMirrorContinent(t *testing.T) {
	tests := []struct {
		loc  string
		want netsim.Continent
	}{
		{"", netsim.Europe},
		{"Europe", netsim.Europe},
		{"europe", netsim.Europe},
		{"North America", netsim.NorthAmerica},
		{"northamerica", netsim.NorthAmerica},
		{"Asia", netsim.Asia},
	}
	for _, tt := range tests {
		got, err := Mirror{Location: tt.loc}.Continent()
		if err != nil || got != tt.want {
			t.Errorf("Continent(%q) = %v, %v", tt.loc, got, err)
		}
	}
	if _, err := (Mirror{Location: "Mars"}).Continent(); !errors.Is(err, ErrInvalid) {
		t.Errorf("err = %v", err)
	}
}

func TestParseSkipsCommentsAndBlanks(t *testing.T) {
	src := `# organizational policy

mirrors:
  - hostname: https://a/

signers_keys:
  - |-
` + indent(signerPEM(t, "alpine-4a40"), "    ") + "\n"
	p, err := Parse([]byte(src))
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Mirrors) != 1 || len(p.SignerKeys) != 1 {
		t.Fatalf("policy = %+v", p)
	}
}

// Robustness: Parse never panics on arbitrary input.
func TestParseRobustnessProperty(t *testing.T) {
	f := func(src string) bool {
		_, _ = Parse([]byte(src))
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestWhitelistBlacklistRoundtrip(t *testing.T) {
	p := samplePolicy(t)
	p.PackageWhitelist = []string{"busybox", "openssl"}
	p.PackageBlacklist = []string{"telnetd"}
	got, err := Parse(p.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, p) {
		t.Fatalf("roundtrip mismatch:\n%+v\nvs\n%+v", got, p)
	}
}

func TestAllows(t *testing.T) {
	open := &Policy{}
	if !open.Allows("anything") {
		t.Fatal("open policy must allow everything")
	}
	closed := &Policy{PackageWhitelist: []string{"a", "b"}, PackageBlacklist: []string{"b"}}
	if !closed.Allows("a") {
		t.Fatal("whitelisted package denied")
	}
	if closed.Allows("b") {
		t.Fatal("blacklist must override whitelist")
	}
	if closed.Allows("c") {
		t.Fatal("unlisted package allowed despite whitelist")
	}
	blackOnly := &Policy{PackageBlacklist: []string{"x"}}
	if blackOnly.Allows("x") || !blackOnly.Allows("y") {
		t.Fatal("blacklist-only semantics wrong")
	}
}
