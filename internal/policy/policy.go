// Package policy implements TSR security policies (§4.5, Listing 1).
// A policy defines, per client organization: the repository mirrors TSR
// may read (with their locations, so the simulation can model latency),
// the package signer keys the organization trusts, and the initial OS
// configuration files (/etc/passwd, /etc/shadow, /etc/group) that seed
// the sanitizer's configuration prediction.
//
// The wire format is the YAML subset of Listing 1 (maps, lists of maps,
// block scalars with "|-"), parsed by a purpose-built parser so the
// module stays stdlib-only.
package policy

import (
	"errors"
	"fmt"
	"strings"

	"tsr/internal/keys"
	"tsr/internal/netsim"
)

// Error sentinels.
var (
	ErrFormat  = errors.New("policy: malformed policy")
	ErrInvalid = errors.New("policy: invalid policy")
)

// Mirror is one mirror declaration.
type Mirror struct {
	// Hostname is the mirror URL.
	Hostname string
	// Location is the mirror's continent ("Europe", "North America",
	// "Asia"), used by the network simulation; defaults to Europe.
	Location string
	// CertificateChain optionally pins the mirror's TLS chain (carried
	// verbatim; the simulation does not evaluate X.509).
	CertificateChain string
}

// Continent maps the textual location to the netsim continent.
func (m Mirror) Continent() (netsim.Continent, error) {
	switch strings.ToLower(strings.TrimSpace(m.Location)) {
	case "", "europe":
		return netsim.Europe, nil
	case "north america", "northamerica":
		return netsim.NorthAmerica, nil
	case "asia":
		return netsim.Asia, nil
	default:
		return 0, fmt.Errorf("%w: unknown location %q", ErrInvalid, m.Location)
	}
}

// ConfigFile is an initial OS configuration file.
type ConfigFile struct {
	Path    string
	Content string
}

// Policy is a parsed TSR security policy.
type Policy struct {
	// Mirrors lists the mirrors TSR reads; the quorum rule tolerates
	// f faulty mirrors out of 2f+1.
	Mirrors []Mirror
	// SignerKeys holds PEM-encoded public keys of trusted package
	// signers.
	SignerKeys []string
	// InitConfigFiles seeds configuration prediction.
	InitConfigFiles []ConfigFile
	// PackageWhitelist, when non-empty, restricts the repository to the
	// listed package names — the §4.5 "private/closed variant" of the
	// policy. PackageBlacklist excludes names (applied after the
	// whitelist).
	PackageWhitelist []string
	PackageBlacklist []string
}

// Allows reports whether the policy permits serving the named package.
func (p *Policy) Allows(name string) bool {
	if len(p.PackageWhitelist) > 0 {
		found := false
		for _, w := range p.PackageWhitelist {
			if w == name {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	for _, b := range p.PackageBlacklist {
		if b == name {
			return false
		}
	}
	return true
}

// MaxFaulty returns f, the number of Byzantine mirrors tolerated by the
// quorum rule given the declared mirror count (n = 2f+1 → f = (n-1)/2).
func (p *Policy) MaxFaulty() int {
	if len(p.Mirrors) == 0 {
		return 0
	}
	return (len(p.Mirrors) - 1) / 2
}

// Validate checks structural invariants.
func (p *Policy) Validate() error {
	if len(p.Mirrors) == 0 {
		return fmt.Errorf("%w: no mirrors", ErrInvalid)
	}
	seen := make(map[string]bool, len(p.Mirrors))
	for _, m := range p.Mirrors {
		if m.Hostname == "" {
			return fmt.Errorf("%w: mirror without hostname", ErrInvalid)
		}
		if seen[m.Hostname] {
			return fmt.Errorf("%w: duplicate mirror %q", ErrInvalid, m.Hostname)
		}
		seen[m.Hostname] = true
		if _, err := m.Continent(); err != nil {
			return err
		}
	}
	if len(p.SignerKeys) == 0 {
		return fmt.Errorf("%w: no trusted signer keys", ErrInvalid)
	}
	if _, err := p.SignerRing(); err != nil {
		return err
	}
	for _, f := range p.InitConfigFiles {
		if !strings.HasPrefix(f.Path, "/") {
			return fmt.Errorf("%w: config path %q not absolute", ErrInvalid, f.Path)
		}
	}
	return nil
}

// SignerRing parses the trusted signer keys into a verification ring.
// Keys are named by fingerprint ("signer-<fp>").
func (p *Policy) SignerRing() (*keys.Ring, error) {
	ring := keys.NewRing()
	for i, pemText := range p.SignerKeys {
		k, err := keys.ParsePEM(fmt.Sprintf("policy-signer-%d", i), []byte(pemText))
		if err != nil {
			return nil, fmt.Errorf("%w: signer key %d: %v", ErrInvalid, i, err)
		}
		ring.Add(k)
	}
	return ring, nil
}

// Marshal renders the policy in the Listing-1 wire format.
func (p *Policy) Marshal() []byte {
	var b strings.Builder
	b.WriteString("mirrors:\n")
	for _, m := range p.Mirrors {
		fmt.Fprintf(&b, "  - hostname: %s\n", m.Hostname)
		if m.Location != "" {
			fmt.Fprintf(&b, "    location: %s\n", m.Location)
		}
		if m.CertificateChain != "" {
			b.WriteString("    certificate_chain: |-\n")
			writeBlock(&b, m.CertificateChain, "      ")
		}
	}
	b.WriteString("signers_keys:\n")
	for _, k := range p.SignerKeys {
		b.WriteString("  - |-\n")
		writeBlock(&b, k, "    ")
	}
	if len(p.InitConfigFiles) > 0 {
		b.WriteString("init_config_files:\n")
		for _, f := range p.InitConfigFiles {
			fmt.Fprintf(&b, "  - path: %s\n", f.Path)
			b.WriteString("    content: |-\n")
			writeBlock(&b, f.Content, "      ")
		}
	}
	writeNameList := func(section string, names []string) {
		if len(names) == 0 {
			return
		}
		b.WriteString(section + ":\n")
		for _, n := range names {
			fmt.Fprintf(&b, "  - %s\n", n)
		}
	}
	writeNameList("package_whitelist", p.PackageWhitelist)
	writeNameList("package_blacklist", p.PackageBlacklist)
	return []byte(b.String())
}

func writeBlock(b *strings.Builder, text, indent string) {
	for _, line := range strings.Split(strings.TrimRight(text, "\n"), "\n") {
		b.WriteString(indent)
		b.WriteString(line)
		b.WriteByte('\n')
	}
}

// Parse reads a policy in the Listing-1 format.
func Parse(raw []byte) (*Policy, error) {
	p := &Policy{}
	lines := strings.Split(string(raw), "\n")
	i := 0
	for i < len(lines) {
		line := lines[i]
		trimmed := strings.TrimSpace(line)
		if trimmed == "" || strings.HasPrefix(trimmed, "#") {
			i++
			continue
		}
		if indentOf(line) != 0 {
			return nil, fmt.Errorf("%w: line %d: unexpected indentation", ErrFormat, i+1)
		}
		switch trimmed {
		case "mirrors:":
			var err error
			i, err = parseMirrors(lines, i+1, p)
			if err != nil {
				return nil, err
			}
		case "signers_keys:":
			var err error
			i, err = parseSignerKeys(lines, i+1, p)
			if err != nil {
				return nil, err
			}
		case "init_config_files:":
			var err error
			i, err = parseConfigFiles(lines, i+1, p)
			if err != nil {
				return nil, err
			}
		case "package_whitelist:":
			var err error
			i, err = parseNameList(lines, i+1, &p.PackageWhitelist)
			if err != nil {
				return nil, err
			}
		case "package_blacklist:":
			var err error
			i, err = parseNameList(lines, i+1, &p.PackageBlacklist)
			if err != nil {
				return nil, err
			}
		default:
			return nil, fmt.Errorf("%w: line %d: unknown section %q", ErrFormat, i+1, trimmed)
		}
	}
	return p, nil
}

func indentOf(line string) int {
	n := 0
	for n < len(line) && line[n] == ' ' {
		n++
	}
	return n
}

// parseMirrors consumes "  - key: value" items until dedent.
func parseMirrors(lines []string, i int, p *Policy) (int, error) {
	for i < len(lines) {
		line := lines[i]
		trimmed := strings.TrimSpace(line)
		if trimmed == "" {
			i++
			continue
		}
		if indentOf(line) == 0 {
			return i, nil
		}
		if !strings.HasPrefix(trimmed, "- ") {
			return 0, fmt.Errorf("%w: line %d: expected mirror list item", ErrFormat, i+1)
		}
		var m Mirror
		var err error
		i, err = parseMirrorItem(lines, i, &m)
		if err != nil {
			return 0, err
		}
		p.Mirrors = append(p.Mirrors, m)
	}
	return i, nil
}

func parseMirrorItem(lines []string, i int, m *Mirror) (int, error) {
	first := true
	for i < len(lines) {
		line := lines[i]
		trimmed := strings.TrimSpace(line)
		if trimmed == "" {
			i++
			continue
		}
		ind := indentOf(line)
		if ind == 0 {
			return i, nil
		}
		if !first && strings.HasPrefix(trimmed, "- ") {
			return i, nil // next item
		}
		body := trimmed
		if first {
			body = strings.TrimPrefix(trimmed, "- ")
			first = false
		}
		key, value, ok := strings.Cut(body, ":")
		if !ok {
			return 0, fmt.Errorf("%w: line %d: expected key: value", ErrFormat, i+1)
		}
		value = strings.TrimSpace(value)
		switch key {
		case "hostname":
			m.Hostname = value
			i++
		case "location":
			m.Location = value
			i++
		case "certificate_chain":
			if value != "|-" {
				return 0, fmt.Errorf("%w: line %d: certificate_chain must be a |- block", ErrFormat, i+1)
			}
			var block string
			var err error
			block, i, err = parseBlockScalar(lines, i+1, ind+2)
			if err != nil {
				return 0, err
			}
			m.CertificateChain = block
		default:
			return 0, fmt.Errorf("%w: line %d: unknown mirror key %q", ErrFormat, i+1, key)
		}
	}
	return i, nil
}

// parseSignerKeys consumes "  - |-" block scalar items.
func parseSignerKeys(lines []string, i int, p *Policy) (int, error) {
	for i < len(lines) {
		line := lines[i]
		trimmed := strings.TrimSpace(line)
		if trimmed == "" {
			i++
			continue
		}
		ind := indentOf(line)
		if ind == 0 {
			return i, nil
		}
		if trimmed != "- |-" && !strings.HasPrefix(trimmed, "- |- #") {
			return 0, fmt.Errorf("%w: line %d: expected '- |-' signer key block", ErrFormat, i+1)
		}
		block, next, err := parseBlockScalar(lines, i+1, ind+2)
		if err != nil {
			return 0, err
		}
		p.SignerKeys = append(p.SignerKeys, block)
		i = next
	}
	return i, nil
}

func parseConfigFiles(lines []string, i int, p *Policy) (int, error) {
	for i < len(lines) {
		line := lines[i]
		trimmed := strings.TrimSpace(line)
		if trimmed == "" {
			i++
			continue
		}
		ind := indentOf(line)
		if ind == 0 {
			return i, nil
		}
		if !strings.HasPrefix(trimmed, "- path:") {
			return 0, fmt.Errorf("%w: line %d: expected '- path:' item", ErrFormat, i+1)
		}
		var f ConfigFile
		f.Path = strings.TrimSpace(strings.TrimPrefix(trimmed, "- path:"))
		i++
		// Expect "content: |-" at deeper indent.
		for i < len(lines) && strings.TrimSpace(lines[i]) == "" {
			i++
		}
		if i >= len(lines) || strings.TrimSpace(lines[i]) != "content: |-" {
			return 0, fmt.Errorf("%w: line %d: expected 'content: |-'", ErrFormat, i+1)
		}
		contentIndent := indentOf(lines[i])
		var err error
		var block string
		block, i, err = parseBlockScalar(lines, i+1, contentIndent+2)
		if err != nil {
			return 0, err
		}
		f.Content = block
		p.InitConfigFiles = append(p.InitConfigFiles, f)
	}
	return i, nil
}

// parseNameList consumes "  - name" items until dedent.
func parseNameList(lines []string, i int, out *[]string) (int, error) {
	for i < len(lines) {
		line := lines[i]
		trimmed := strings.TrimSpace(line)
		if trimmed == "" {
			i++
			continue
		}
		if indentOf(line) == 0 {
			return i, nil
		}
		name, ok := strings.CutPrefix(trimmed, "- ")
		if !ok || name == "" {
			return 0, fmt.Errorf("%w: line %d: expected '- <package>'", ErrFormat, i+1)
		}
		*out = append(*out, strings.TrimSpace(name))
		i++
	}
	return i, nil
}

// parseBlockScalar reads lines indented at least minIndent, strips
// minIndent spaces, and joins them with newlines (|- chomping: no
// trailing newline).
func parseBlockScalar(lines []string, i, minIndent int) (string, int, error) {
	var out []string
	for i < len(lines) {
		line := lines[i]
		if strings.TrimSpace(line) == "" {
			// blank line inside the block only if more block follows
			if i+1 < len(lines) && indentOf(lines[i+1]) >= minIndent && strings.TrimSpace(lines[i+1]) != "" {
				out = append(out, "")
				i++
				continue
			}
			break
		}
		if indentOf(line) < minIndent {
			break
		}
		out = append(out, line[minIndent:])
		i++
	}
	if len(out) == 0 {
		return "", 0, fmt.Errorf("%w: line %d: empty block scalar", ErrFormat, i+1)
	}
	return strings.Join(out, "\n"), i, nil
}
