package obs

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestHistogramQuantiles(t *testing.T) {
	var h Histogram
	// 90 fast observations (~1ms) and 10 slow (~100ms): p50/p90 land in
	// the 1ms region, p99 in the 100ms region.
	for i := 0; i < 90; i++ {
		h.Observe(time.Millisecond)
	}
	for i := 0; i < 10; i++ {
		h.Observe(100 * time.Millisecond)
	}
	s := h.Snapshot()
	if s.Count != 100 {
		t.Fatalf("count = %d, want 100", s.Count)
	}
	if s.P50Ms > 4 {
		t.Fatalf("p50 = %.2fms, want ~1ms (log-bucket bound ≤4ms)", s.P50Ms)
	}
	if s.P99Ms < 64 || s.P99Ms > 256 {
		t.Fatalf("p99 = %.2fms, want in the 100ms bucket range", s.P99Ms)
	}
	if s.MaxMs < 99 {
		t.Fatalf("max = %.2fms, want ≥ 100ms sample", s.MaxMs)
	}
	if s.MeanMs < 10 || s.MeanMs > 12 {
		t.Fatalf("mean = %.2fms, want ~10.9ms", s.MeanMs)
	}
	if len(s.Buckets) != 2 {
		t.Fatalf("%d occupied buckets, want 2", len(s.Buckets))
	}
}

func TestHistogramConcurrentObserve(t *testing.T) {
	var h Histogram
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				h.Observe(time.Duration(j) * time.Microsecond)
			}
		}()
	}
	wg.Wait()
	if s := h.Snapshot(); s.Count != 8000 {
		t.Fatalf("count = %d, want 8000", s.Count)
	}
}

func TestHistogramObserveSince(t *testing.T) {
	var h Histogram
	h.ObserveSince(time.Now().Add(-5 * time.Millisecond))
	s := h.Snapshot()
	if s.Count != 1 {
		t.Fatalf("count = %d, want 1", s.Count)
	}
	if s.MaxMs < 4 || s.MaxMs > 100 {
		t.Fatalf("max = %.2fms, want ~5ms", s.MaxMs)
	}
	// A start in the future must clamp to the zero bucket, not panic or
	// go negative.
	h.ObserveSince(time.Now().Add(time.Hour))
	if s := h.Snapshot(); s.Count != 2 {
		t.Fatalf("count = %d, want 2", s.Count)
	}
}

func TestRouteKeyNormalization(t *testing.T) {
	cases := []struct{ method, path, want string }{
		{"GET", "/repos/abc123/packages/openssl", "GET /repos/{id}/packages/{pkg}"},
		{"GET", "/repos/abc123/scripts/openssl", "GET /repos/{id}/scripts/{pkg}"},
		{"GET", "/repos/abc123/index", "GET /repos/{id}/index"},
		{"GET", "/repos/abc123/index/delta", "GET /repos/{id}/index/delta"},
		{"POST", "/repos/abc123/sync", "POST /repos/{id}/sync"},
		{"POST", "/policies", "POST /policies"},
		{"GET", "/healthz", "GET /healthz"},
		{"GET", "/", "GET /"},
	}
	for _, tc := range cases {
		if got := routeKey(tc.method, tc.path); got != tc.want {
			t.Errorf("routeKey(%s %s) = %q, want %q", tc.method, tc.path, got, tc.want)
		}
	}
}

// TestAdmissionControlSheds saturates a wrapped handler and verifies
// the gate: requests beyond MaxInflight get 429 + Retry-After, the
// shed is counted, and /healthz plus /metrics stay reachable.
func TestAdmissionControlSheds(t *testing.T) {
	const maxInflight = 2
	release := make(chan struct{})
	entered := make(chan struct{}, 16)
	inner := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/healthz" {
			w.WriteHeader(http.StatusOK)
			return
		}
		entered <- struct{}{}
		<-release
		w.WriteHeader(http.StatusOK)
	})
	o := New(Options{MaxInflight: maxInflight, RetryAfter: 3 * time.Second})
	handler := o.Wrap(inner)

	// Fill both slots.
	var wg sync.WaitGroup
	for i := 0; i < maxInflight; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			rec := httptest.NewRecorder()
			handler.ServeHTTP(rec, httptest.NewRequest("GET", "/repos/r/index", nil))
			if rec.Code != http.StatusOK {
				t.Errorf("admitted request got %d", rec.Code)
			}
		}()
	}
	<-entered
	<-entered

	// Saturated: the next request is shed.
	rec := httptest.NewRecorder()
	handler.ServeHTTP(rec, httptest.NewRequest("GET", "/repos/r/index", nil))
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("over-capacity request got %d, want 429", rec.Code)
	}
	if got := rec.Header().Get("Retry-After"); got != "3" {
		t.Fatalf("Retry-After = %q, want \"3\"", got)
	}

	// Health and metrics bypass the gate.
	rec = httptest.NewRecorder()
	handler.ServeHTTP(rec, httptest.NewRequest("GET", "/healthz", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("/healthz got %d during saturation, want 200", rec.Code)
	}
	rec = httptest.NewRecorder()
	handler.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("/metrics got %d during saturation, want 200", rec.Code)
	}
	var mid Snapshot
	if err := json.Unmarshal(rec.Body.Bytes(), &mid); err != nil {
		t.Fatal(err)
	}
	if mid.Inflight != maxInflight {
		t.Fatalf("inflight gauge = %d during saturation, want %d", mid.Inflight, maxInflight)
	}
	if mid.ShedTotal != 1 {
		t.Fatalf("shed_total = %d, want 1", mid.ShedTotal)
	}

	close(release)
	wg.Wait()

	s := o.Snapshot()
	if s.Inflight != 0 {
		t.Fatalf("inflight = %d after drain, want 0", s.Inflight)
	}
	// Exempt requests (/healthz) bypass the gate AND the gauge, so the
	// peak never exceeds the admission bound.
	if s.PeakInflight != maxInflight {
		t.Fatalf("peak_inflight = %d, want exactly %d", s.PeakInflight, maxInflight)
	}
	if s.MaxInflight != maxInflight {
		t.Fatalf("max_inflight = %d, want %d", s.MaxInflight, maxInflight)
	}
	ep, ok := s.Endpoints["GET /repos/{id}/index"]
	if !ok {
		t.Fatalf("no endpoint entry for the index route; have %v", keysOf(s.Endpoints))
	}
	if ep.Count != maxInflight {
		t.Fatalf("index endpoint count = %d, want %d served", ep.Count, maxInflight)
	}
	if ep.Shed != 1 {
		t.Fatalf("index endpoint shed = %d, want 1", ep.Shed)
	}
	if ep.Status["2xx"] != maxInflight {
		t.Fatalf("status 2xx = %d, want %d", ep.Status["2xx"], maxInflight)
	}
	if ep.Latency.Count != maxInflight {
		t.Fatalf("latency count = %d, want %d (shed responses must not enter the histogram)", ep.Latency.Count, maxInflight)
	}
}

// TestHealthzDoesNotConsumeCapacity pins the exemption semantics: a
// health probe in flight must not occupy an admission slot, or at
// -max-inflight 1 an orchestrator's probes would shed every real
// request.
func TestHealthzDoesNotConsumeCapacity(t *testing.T) {
	release := make(chan struct{})
	entered := make(chan struct{}, 1)
	inner := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/healthz" {
			entered <- struct{}{}
			<-release
		}
		w.WriteHeader(http.StatusOK)
	})
	o := New(Options{MaxInflight: 1})
	handler := o.Wrap(inner)

	done := make(chan struct{})
	go func() {
		defer close(done)
		rec := httptest.NewRecorder()
		handler.ServeHTTP(rec, httptest.NewRequest("GET", "/healthz", nil))
	}()
	<-entered

	// With the probe parked in flight, the single admission slot must
	// still be free for a real request.
	rec := httptest.NewRecorder()
	handler.ServeHTTP(rec, httptest.NewRequest("GET", "/repos/r/index", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("request during health probe got %d, want 200 (probe consumed the admission slot)", rec.Code)
	}
	if got := o.Snapshot().Inflight; got != 0 {
		t.Fatalf("inflight = %d with only an exempt probe running, want 0", got)
	}
	close(release)
	<-done
}

// TestStatusClassesRecorded verifies response classes are tallied per
// endpoint.
func TestStatusClassesRecorded(t *testing.T) {
	inner := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch r.URL.Path {
		case "/repos/a/index":
			w.WriteHeader(http.StatusOK)
		case "/repos/b/index":
			w.WriteHeader(http.StatusNotFound)
		default:
			w.WriteHeader(http.StatusInternalServerError)
		}
	})
	o := New(Options{})
	handler := o.Wrap(inner)
	for _, path := range []string{"/repos/a/index", "/repos/b/index", "/oops"} {
		rec := httptest.NewRecorder()
		handler.ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
	}
	s := o.Snapshot()
	ep := s.Endpoints["GET /repos/{id}/index"]
	if ep.Status["2xx"] != 1 || ep.Status["4xx"] != 1 {
		t.Fatalf("index endpoint status = %v, want one 2xx and one 4xx", ep.Status)
	}
	if s.Endpoints["GET /oops"].Status["5xx"] != 1 {
		t.Fatalf("oops endpoint status = %v, want one 5xx", s.Endpoints["GET /oops"].Status)
	}
	if s.MaxInflight != 0 {
		t.Fatalf("max_inflight = %d, want 0 (unlimited)", s.MaxInflight)
	}
}

// TestEndpointCardinalityBounded verifies a URL-spraying client cannot
// grow the registry without bound: past the cap, unseen routes fold
// into one overflow bucket, and absurd paths are clipped.
func TestEndpointCardinalityBounded(t *testing.T) {
	inner := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusNotFound)
	})
	o := New(Options{})
	handler := o.Wrap(inner)
	for i := 0; i < maxEndpoints*4; i++ {
		rec := httptest.NewRecorder()
		handler.ServeHTTP(rec, httptest.NewRequest("GET", fmt.Sprintf("/scan-%d", i), nil))
	}
	s := o.Snapshot()
	if len(s.Endpoints) > maxEndpoints+1 {
		t.Fatalf("registry grew to %d endpoints, cap is %d + overflow", len(s.Endpoints), maxEndpoints)
	}
	over, ok := s.Endpoints[overflowKey]
	if !ok {
		t.Fatalf("no %q overflow bucket after %d unique paths", overflowKey, maxEndpoints*4)
	}
	if over.Count != int64(maxEndpoints*4-maxEndpoints) {
		t.Fatalf("overflow count = %d, want %d", over.Count, maxEndpoints*3)
	}

	// Long paths are clipped to bounded keys.
	long := "/a/b/c/d/e/f/g/h/" + strings.Repeat("x", 500)
	if key := routeKey("GET", long); len(key) > 104 {
		t.Fatalf("routeKey produced a %d-byte key", len(key))
	}
}

func keysOf(m map[string]EndpointSnapshot) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}
