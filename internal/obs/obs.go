// Package obs is the serving-tier observability subsystem: lock-free
// per-endpoint latency histograms, an in-flight gauge, and a bounded
// admission controller, wrapped as HTTP middleware around the origin
// (tsrd) and edge (tsredge) handlers and exposed as JSON at
// GET /metrics.
//
// Everything on the request path is wait-free after the first request
// to an endpoint: histograms are fixed arrays of atomic counters
// (log-bucketed, so 40 integers cover nanoseconds to hours with ≤2x
// relative error on quantiles), the endpoint registry is a
// copy-on-write map behind an atomic pointer (a lookup is one load +
// one map read; the write lock is taken only when a never-seen route
// appears), and the admission gate is a CAS loop on one integer. A
// metrics scrape reads the same atomics — it never stalls serving, and
// serving never stalls it.
package obs

import (
	"math/bits"
	"sync"
	"sync/atomic"
	"time"
)

// histBuckets is the number of log2 latency buckets. Bucket i counts
// observations with ceil(log2(µs)) == i, so bucket 0 is ≤1µs and
// bucket 39 is ~9.1 days — comfortably past any real request.
const histBuckets = 40

// Histogram is a lock-free log-bucketed latency histogram. The zero
// value is ready to use.
type Histogram struct {
	count   atomic.Int64
	sum     atomic.Int64 // nanoseconds
	max     atomic.Int64 // nanoseconds
	buckets [histBuckets]atomic.Int64
}

// bucketFor maps a duration to its log2 bucket index.
func bucketFor(d time.Duration) int {
	us := uint64(d / time.Microsecond)
	if us == 0 {
		return 0
	}
	// bits.Len64(us) is ceil(log2(us))+1 for non-powers, exactly
	// log2+1 for powers; using Len64(us-1) gives ceil(log2(us)).
	b := bits.Len64(us - 1)
	if b >= histBuckets {
		return histBuckets - 1
	}
	return b
}

// bucketUpperUs is the inclusive upper bound of bucket i in µs.
func bucketUpperUs(i int) float64 { return float64(uint64(1) << uint(i)) }

// Observe records one latency sample.
func (h *Histogram) Observe(d time.Duration) {
	if d < 0 {
		d = 0
	}
	h.count.Add(1)
	h.sum.Add(int64(d))
	h.buckets[bucketFor(d)].Add(1)
	for {
		cur := h.max.Load()
		if int64(d) <= cur || h.max.CompareAndSwap(cur, int64(d)) {
			break
		}
	}
}

// ObserveSince records the latency of an operation started at start —
// the one-liner every read site of the soak harness uses, so the
// measurement convention (time.Since at the call site) cannot drift
// between call sites.
func (h *Histogram) ObserveSince(start time.Time) {
	h.Observe(time.Since(start))
}

// HistogramSnapshot is a point-in-time read of a histogram. Quantiles
// are bucket upper bounds, so they overestimate by at most 2x — the
// right direction for an SLO readout.
type HistogramSnapshot struct {
	Count  int64   `json:"count"`
	MeanMs float64 `json:"mean_ms"`
	MaxMs  float64 `json:"max_ms"`
	P50Ms  float64 `json:"p50_ms"`
	P90Ms  float64 `json:"p90_ms"`
	P99Ms  float64 `json:"p99_ms"`
	// Buckets lists only the occupied buckets as {le_us, count} pairs,
	// cumulative-free (count is per-bucket), keeping /metrics compact.
	Buckets []Bucket `json:"buckets,omitempty"`
}

// Bucket is one occupied histogram bucket: Count observations at or
// under LeUs microseconds (and above the previous bucket's bound).
type Bucket struct {
	LeUs  float64 `json:"le_us"`
	Count int64   `json:"count"`
}

// Snapshot reads the histogram. Concurrent Observe calls may straddle
// the reads; the snapshot is still internally consistent enough for
// monitoring (counts are monotone, quantiles bucket-accurate).
func (h *Histogram) Snapshot() HistogramSnapshot {
	var counts [histBuckets]int64
	var total int64
	for i := range h.buckets {
		counts[i] = h.buckets[i].Load()
		total += counts[i]
	}
	s := HistogramSnapshot{Count: h.count.Load()}
	if s.Count > 0 {
		s.MeanMs = float64(h.sum.Load()) / float64(s.Count) / float64(time.Millisecond)
	}
	s.MaxMs = float64(h.max.Load()) / float64(time.Millisecond)
	if total == 0 {
		return s
	}
	// Quantiles over the bucketed total (which may trail count by the
	// handful of in-flight Observes — harmless).
	q := func(p float64) float64 {
		target := int64(p*float64(total)) + 1
		if target > total {
			target = total
		}
		var cum int64
		for i := 0; i < histBuckets; i++ {
			cum += counts[i]
			if cum >= target {
				return bucketUpperUs(i) / 1e3 // µs → ms
			}
		}
		return bucketUpperUs(histBuckets-1) / 1e3
	}
	s.P50Ms, s.P90Ms, s.P99Ms = q(0.50), q(0.90), q(0.99)
	for i, c := range counts {
		if c > 0 {
			s.Buckets = append(s.Buckets, Bucket{LeUs: bucketUpperUs(i), Count: c})
		}
	}
	return s
}

// Endpoint aggregates one route's metrics.
type Endpoint struct {
	latency Histogram
	// status counts responses by class: index 1→1xx … 5→5xx.
	status [6]atomic.Int64
	shed   atomic.Int64
	// bytesIn/bytesOut count request-body bytes read and response-body
	// bytes written, so wire-efficiency wins (gzip indexes, chunked
	// differential sync, 206 ranges) are observable in production.
	bytesIn  atomic.Int64
	bytesOut atomic.Int64
	// p99CacheNs/p99CachedAtNs memoize the latency p99 for the trace
	// sampler's slow-keep rule, so the per-request check is two atomic
	// loads instead of a 40-bucket scan.
	p99CacheNs    atomic.Int64
	p99CachedAtNs atomic.Int64
}

// EndpointSnapshot is the JSON form of one endpoint's metrics.
type EndpointSnapshot struct {
	Count    int64             `json:"count"`
	Status   map[string]int64  `json:"status,omitempty"`
	Shed     int64             `json:"shed,omitempty"`
	BytesIn  int64             `json:"bytes_in"`
	BytesOut int64             `json:"bytes_out"`
	Latency  HistogramSnapshot `json:"latency"`
}

// Metrics is one daemon's metric registry.
type Metrics struct {
	start time.Time

	// endpoints is copy-on-write: readers load the map and index it
	// without locking; mu serializes only the insertion of new routes.
	endpoints atomic.Pointer[map[string]*Endpoint]
	mu        sync.Mutex

	inflight     atomic.Int64
	peakInflight atomic.Int64
	shed         atomic.Int64
}

// NewMetrics returns an empty registry.
func NewMetrics() *Metrics {
	m := &Metrics{start: time.Now()}
	empty := map[string]*Endpoint{}
	m.endpoints.Store(&empty)
	return m
}

// maxEndpoints caps the registry size. The real API has ~a dozen
// routes; the cap exists because routeKey passes unmatched paths
// through, and an unauthenticated scanner spraying unique URLs must
// not be able to allocate an unbounded number of permanent Endpoint
// structs (each a 40-bucket histogram, plus an O(n) copy-on-write map
// rebuild per insert). Once full, unseen keys collapse into one
// overflow bucket.
const maxEndpoints = 64

// overflowKey aggregates requests beyond the registry cap.
const overflowKey = "(other)"

// endpoint returns the Endpoint for a route key, creating it on first
// sight (the only path that takes the lock).
func (m *Metrics) endpoint(key string) *Endpoint {
	if ep, ok := (*m.endpoints.Load())[key]; ok {
		return ep
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	cur := *m.endpoints.Load()
	if ep, ok := cur[key]; ok {
		return ep
	}
	if len(cur) >= maxEndpoints {
		if ep, ok := cur[overflowKey]; ok {
			return ep
		}
		key = overflowKey
	}
	next := make(map[string]*Endpoint, len(cur)+1)
	for k, v := range cur {
		next[k] = v
	}
	ep := &Endpoint{}
	next[key] = ep
	m.endpoints.Store(&next)
	return ep
}

// ObserveRequest records one served request: its latency, response
// status class, and wire bytes (request body in, response body out),
// under the given route key.
func (m *Metrics) ObserveRequest(key string, status int, d time.Duration, bytesIn, bytesOut int64) {
	ep := m.endpoint(key)
	ep.latency.Observe(d)
	class := status / 100
	if class < 1 || class > 5 {
		class = 5
	}
	ep.status[class].Add(1)
	ep.bytesIn.Add(bytesIn)
	ep.bytesOut.Add(bytesOut)
}

// ObserveShed records one request refused by admission control (not
// counted in the latency histogram: shed responses are near-instant
// and would drag the served-request quantiles toward zero).
func (m *Metrics) ObserveShed(key string) {
	m.shed.Add(1)
	m.endpoint(key).shed.Add(1)
}

// RequestStarted / RequestDone maintain the in-flight gauge.
func (m *Metrics) RequestStarted() {
	m.notePeak(m.inflight.Add(1))
}

// notePeak ratchets the peak-inflight watermark.
func (m *Metrics) notePeak(cur int64) {
	for {
		peak := m.peakInflight.Load()
		if cur <= peak || m.peakInflight.CompareAndSwap(peak, cur) {
			break
		}
	}
}

func (m *Metrics) RequestDone() { m.inflight.Add(-1) }

// slowMinSamples is the per-route sample floor below which there is no
// meaningful p99 to compare a request against.
const slowMinSamples = 64

// slowCacheTTL bounds how stale the memoized per-route p99 may get.
const slowCacheTTL = int64(time.Second)

// SlowThreshold returns the route's latency p99 — the trace sampler's
// "slow" bar — or 0 when the route is unknown or too thinly sampled.
// The value is recomputed at most once per second per route; between
// refreshes the check costs two atomic loads, keeping the sampler off
// the serving path's critical section.
func (m *Metrics) SlowThreshold(key string) time.Duration {
	ep, ok := (*m.endpoints.Load())[key]
	if !ok {
		return 0
	}
	now := time.Now().UnixNano()
	if at := ep.p99CachedAtNs.Load(); now-at < slowCacheTTL {
		return time.Duration(ep.p99CacheNs.Load())
	}
	p99 := ep.latency.p99(slowMinSamples)
	// Racing refreshes may interleave the two stores; both computed the
	// same ~current p99, so the mismatch window is harmless telemetry.
	ep.p99CacheNs.Store(int64(p99))
	ep.p99CachedAtNs.Store(now)
	return p99
}

// p99 returns the histogram's p99 (as a bucket upper bound), or 0 with
// fewer than min samples.
func (h *Histogram) p99(min int64) time.Duration {
	var counts [histBuckets]int64
	var total int64
	for i := range h.buckets {
		counts[i] = h.buckets[i].Load()
		total += counts[i]
	}
	if total < min {
		return 0
	}
	target := int64(0.99*float64(total)) + 1
	if target > total {
		target = total
	}
	var cum int64
	for i := 0; i < histBuckets; i++ {
		cum += counts[i]
		if cum >= target {
			return time.Duration(bucketUpperUs(i)) * time.Microsecond
		}
	}
	return time.Duration(bucketUpperUs(histBuckets-1)) * time.Microsecond
}

// Snapshot is the full JSON document served at GET /metrics.
type Snapshot struct {
	UptimeMs     int64                       `json:"uptime_ms"`
	Inflight     int64                       `json:"inflight"`
	PeakInflight int64                       `json:"peak_inflight"`
	MaxInflight  int64                       `json:"max_inflight"` // 0 = unlimited
	ShedTotal    int64                       `json:"shed_total"`
	Endpoints    map[string]EndpointSnapshot `json:"endpoints"`
	// Sched is the global refresh scheduler's snapshot, present only
	// when the daemon wired an Options.Sched source.
	Sched any `json:"sched,omitempty"`
}

// Snapshot reads every counter. Lock-free with respect to the request
// path.
func (m *Metrics) Snapshot() Snapshot {
	s := Snapshot{
		UptimeMs:     time.Since(m.start).Milliseconds(),
		Inflight:     m.inflight.Load(),
		PeakInflight: m.peakInflight.Load(),
		ShedTotal:    m.shed.Load(),
		Endpoints:    map[string]EndpointSnapshot{},
	}
	for key, ep := range *m.endpoints.Load() {
		es := EndpointSnapshot{
			Latency:  ep.latency.Snapshot(),
			Shed:     ep.shed.Load(),
			BytesIn:  ep.bytesIn.Load(),
			BytesOut: ep.bytesOut.Load(),
		}
		for class := 1; class <= 5; class++ {
			if n := ep.status[class].Load(); n > 0 {
				if es.Status == nil {
					es.Status = map[string]int64{}
				}
				es.Status[statusClassLabel(class)] = n
				es.Count += n
			}
		}
		s.Endpoints[key] = es
	}
	return s
}

func statusClassLabel(class int) string {
	return string([]byte{byte('0' + class), 'x', 'x'})
}
