package obs

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// wantsPrometheus decides the /metrics representation from the Accept
// header. JSON stays the default (including Accept: */*); Prometheus
// text format is chosen only when the client names it — text/plain
// (what Prometheus servers send) or application/openmetrics-text.
func wantsPrometheus(accept string) bool {
	for _, part := range strings.Split(accept, ",") {
		mediaType, _, _ := strings.Cut(strings.TrimSpace(part), ";")
		mediaType = strings.ToLower(strings.TrimSpace(mediaType))
		if mediaType == "text/plain" || mediaType == "application/openmetrics-text" {
			return true
		}
	}
	return false
}

// promContentType is the Prometheus text exposition content type.
const promContentType = "text/plain; version=0.0.4; charset=utf-8"

// WritePrometheus renders the snapshot in Prometheus text exposition
// format 0.0.4: the same registry /metrics serves as JSON, re-shaped
// into counters, gauges, and cumulative le-bucketed histograms (in
// seconds) so a stock Prometheus scrape ingests it unmodified. Output
// is sorted for scrape-to-scrape diffability.
func WritePrometheus(w io.Writer, s Snapshot) {
	writeHeader := func(name, help, typ string) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
	}
	writeHeader("tsr_uptime_seconds", "Seconds since the metrics registry was created.", "gauge")
	fmt.Fprintf(w, "tsr_uptime_seconds %g\n", float64(s.UptimeMs)/1e3)
	writeHeader("tsr_inflight", "Requests currently being served.", "gauge")
	fmt.Fprintf(w, "tsr_inflight %d\n", s.Inflight)
	writeHeader("tsr_inflight_peak", "High-water mark of concurrently served requests.", "gauge")
	fmt.Fprintf(w, "tsr_inflight_peak %d\n", s.PeakInflight)
	writeHeader("tsr_inflight_max", "Admission-control bound on in-flight requests (0 = unlimited).", "gauge")
	fmt.Fprintf(w, "tsr_inflight_max %d\n", s.MaxInflight)
	writeHeader("tsr_shed_total", "Requests refused by admission control.", "counter")
	fmt.Fprintf(w, "tsr_shed_total %d\n", s.ShedTotal)

	routes := make([]string, 0, len(s.Endpoints))
	for key := range s.Endpoints {
		routes = append(routes, key)
	}
	sort.Strings(routes)

	writeHeader("tsr_requests_total", "Served requests by route and status class.", "counter")
	for _, route := range routes {
		ep := s.Endpoints[route]
		classes := make([]string, 0, len(ep.Status))
		for class := range ep.Status {
			classes = append(classes, class)
		}
		sort.Strings(classes)
		for _, class := range classes {
			fmt.Fprintf(w, "tsr_requests_total{route=%q,class=%q} %d\n",
				route, class, ep.Status[class])
		}
	}

	writeHeader("tsr_route_shed_total", "Requests refused by admission control, by route.", "counter")
	for _, route := range routes {
		if shed := s.Endpoints[route].Shed; shed > 0 {
			fmt.Fprintf(w, "tsr_route_shed_total{route=%q} %d\n", route, shed)
		}
	}

	writeHeader("tsr_bytes_received_total", "Request-body bytes read, by route.", "counter")
	for _, route := range routes {
		fmt.Fprintf(w, "tsr_bytes_received_total{route=%q} %d\n", route, s.Endpoints[route].BytesIn)
	}

	writeHeader("tsr_bytes_sent_total", "Response-body bytes written, by route.", "counter")
	for _, route := range routes {
		fmt.Fprintf(w, "tsr_bytes_sent_total{route=%q} %d\n", route, s.Endpoints[route].BytesOut)
	}

	writeHeader("tsr_request_duration_seconds", "Served request latency by route.", "histogram")
	// Label values are rendered with %q: Go string quoting escapes
	// backslashes, quotes, and newlines exactly as the exposition
	// format requires, and route keys are plain ASCII.
	for _, route := range routes {
		lat := s.Endpoints[route].Latency
		esc := route
		var cum int64
		for _, b := range lat.Buckets {
			cum += b.Count
			fmt.Fprintf(w, "tsr_request_duration_seconds_bucket{route=%q,le=%q} %d\n",
				esc, formatLe(b.LeUs/1e6), cum)
		}
		fmt.Fprintf(w, "tsr_request_duration_seconds_bucket{route=%q,le=\"+Inf\"} %d\n", esc, lat.Count)
		fmt.Fprintf(w, "tsr_request_duration_seconds_sum{route=%q} %g\n", esc, lat.MeanMs*float64(lat.Count)/1e3)
		fmt.Fprintf(w, "tsr_request_duration_seconds_count{route=%q} %d\n", esc, lat.Count)
	}
}

// formatLe renders a bucket bound in seconds without trailing noise.
func formatLe(secs float64) string {
	return strings.TrimRight(strings.TrimRight(fmt.Sprintf("%.6f", secs), "0"), ".")
}
