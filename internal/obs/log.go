package obs

import (
	"context"
	"fmt"
	"io"
	"log/slog"

	"tsr/internal/trace"
)

// NewLogger builds a daemon's structured logger. format is "text"
// (human-readable logfmt, the default) or "json" (one JSON object per
// line, the -log-format=json contract: every operational event is
// grep-able by key). Records emitted with a traced context carry
// trace_id/span_id, so log lines and /debug/traces join on one ID.
func NewLogger(w io.Writer, format, component string) (*slog.Logger, error) {
	var h slog.Handler
	switch format {
	case "", "text":
		h = slog.NewTextHandler(w, nil)
	case "json":
		h = slog.NewJSONHandler(w, nil)
	default:
		return nil, fmt.Errorf("unknown log format %q (want text or json)", format)
	}
	return slog.New(traceLogHandler{h}).With("component", component), nil
}

// traceLogHandler decorates records with the trace identity carried by
// the logging call's context.
type traceLogHandler struct{ slog.Handler }

func (h traceLogHandler) Handle(ctx context.Context, r slog.Record) error {
	if sp := trace.SpanFromContext(ctx); sp != nil {
		r.AddAttrs(slog.String("trace_id", sp.TraceID()), slog.String("span_id", sp.SpanID()))
	}
	return h.Handler.Handle(ctx, r)
}

func (h traceLogHandler) WithAttrs(attrs []slog.Attr) slog.Handler {
	return traceLogHandler{h.Handler.WithAttrs(attrs)}
}

func (h traceLogHandler) WithGroup(name string) slog.Handler {
	return traceLogHandler{h.Handler.WithGroup(name)}
}
