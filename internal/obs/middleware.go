package obs

import (
	"encoding/json"
	"net/http"
	"strconv"
	"strings"
	"time"
)

// Options configures one daemon's observability wrapper.
type Options struct {
	// MaxInflight bounds concurrently served requests; excess load is
	// shed with 429 + Retry-After instead of queueing unboundedly
	// behind a saturated handler. 0 means unlimited (metrics only).
	MaxInflight int64
	// RetryAfter is the Retry-After hint on shed responses (default 1s,
	// rounded up to whole seconds as the header requires).
	RetryAfter time.Duration
}

// Obs wraps an http.Handler with the metrics subsystem and admission
// control, and serves the registry at GET /metrics.
type Obs struct {
	metrics    *Metrics
	max        int64
	retryAfter string
}

// New builds an Obs with a fresh Metrics registry.
func New(opts Options) *Obs {
	retry := opts.RetryAfter
	if retry <= 0 {
		retry = time.Second
	}
	secs := int64((retry + time.Second - 1) / time.Second)
	return &Obs{
		metrics:    NewMetrics(),
		max:        opts.MaxInflight,
		retryAfter: strconv.FormatInt(secs, 10),
	}
}

// Metrics exposes the registry (for tests and in-process reporting).
func (o *Obs) Metrics() *Metrics { return o.metrics }

// Snapshot reads the full metrics document.
func (o *Obs) Snapshot() Snapshot {
	s := o.metrics.Snapshot()
	s.MaxInflight = o.max
	return s
}

// Wrap returns next wrapped with metrics + admission control, plus the
// GET /metrics endpoint. Request flow:
//
//  1. GET /metrics is answered from the registry (never shed — the
//     one endpoint that must work during an overload is the one that
//     shows the overload).
//  2. /healthz bypasses admission control too: load shedding must not
//     make the daemon look dead to its orchestrator. It is still
//     measured.
//  3. Everything else passes the in-flight gate: a CAS increment up to
//     MaxInflight, or 429 + Retry-After and a shed count.
//  4. Served requests record latency and status class per route.
func (o *Obs) Wrap(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/metrics" && (r.Method == http.MethodGet || r.Method == http.MethodHead) {
			w.Header().Set("Content-Type", "application/json")
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			_ = enc.Encode(o.Snapshot())
			return
		}
		key := routeKey(r.Method, r.URL.Path)
		// gauged: whether this request occupies an in-flight slot. When
		// admission is on, exempt paths (/healthz) bypass the gate AND
		// the gauge — a health probe must neither consume admission
		// capacity (at -max-inflight 1 a probe would shed every real
		// request) nor push the gauge past the bound acquire()
		// guarantees. With admission off the gauge is pure telemetry
		// and counts everything.
		gauged := true
		switch {
		case o.max > 0 && r.URL.Path != "/healthz":
			if !o.acquire() {
				o.metrics.ObserveShed(key)
				w.Header().Set("Retry-After", o.retryAfter)
				w.Header().Set("Content-Type", "application/json")
				w.WriteHeader(http.StatusTooManyRequests)
				_ = json.NewEncoder(w).Encode(map[string]string{
					"error": "server at max in-flight capacity; retry after backoff",
				})
				return
			}
		case o.max > 0:
			gauged = false
		default:
			o.metrics.RequestStarted()
		}
		start := time.Now()
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		defer func() {
			d := time.Since(start)
			if gauged {
				o.metrics.RequestDone()
			}
			o.metrics.ObserveRequest(key, sw.status, d)
		}()
		next.ServeHTTP(sw, r)
	})
}

// acquire tries to reserve one in-flight slot; false means shed. The
// gate IS the metrics in-flight gauge (one CAS reserves the slot and
// moves the gauge together), so /metrics reports exactly the quantity
// admission is bounding and the bound is never transiently exceeded.
func (o *Obs) acquire() bool {
	for {
		cur := o.metrics.inflight.Load()
		if cur >= o.max {
			return false
		}
		if o.metrics.inflight.CompareAndSwap(cur, cur+1) {
			o.metrics.notePeak(cur + 1)
			return true
		}
	}
}

// statusWriter captures the response status for the metrics record.
type statusWriter struct {
	http.ResponseWriter
	status int
	wrote  bool
}

func (w *statusWriter) WriteHeader(code int) {
	if !w.wrote {
		w.status = code
		w.wrote = true
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	w.wrote = true
	return w.ResponseWriter.Write(b)
}

// routeKey normalizes a request path to its route pattern, so metrics
// aggregate per endpoint instead of per URL. It mirrors the route
// shapes of the tsr and edge handlers: the repo id and package name
// segments become {id} and {pkg}. Unmatched paths pass through but
// are clipped (segment count and byte length), so a single absurd URL
// cannot become a kilobytes-long registry key; the registry itself is
// additionally capped (see maxEndpoints).
func routeKey(method, path string) string {
	trimmed := strings.Trim(path, "/")
	if trimmed == "" {
		return method + " /"
	}
	parts := strings.Split(trimmed, "/")
	if len(parts) > 5 {
		parts = append(parts[:5], "...")
	}
	if parts[0] == "repos" && len(parts) >= 2 {
		parts[1] = "{id}"
		if len(parts) >= 4 && (parts[2] == "packages" || parts[2] == "scripts") {
			parts[3] = "{pkg}"
		}
	}
	key := method + " /" + strings.Join(parts, "/")
	if len(key) > 96 {
		key = key[:96] + "..."
	}
	return key
}
