package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"tsr/internal/trace"
)

// Options configures one daemon's observability wrapper.
type Options struct {
	// MaxInflight bounds concurrently served requests; excess load is
	// shed with 429 + Retry-After instead of queueing unboundedly
	// behind a saturated handler. 0 means unlimited (metrics only).
	MaxInflight int64
	// RetryAfter is the Retry-After hint on shed responses (default 1s,
	// rounded up to whole seconds as the header requires).
	RetryAfter time.Duration
	// Tracer enables request tracing: Wrap opens a tier-labeled server
	// span per request, joins an upstream trace from the X-Tsr-Trace-Id
	// / X-Tsr-Span-Id headers, echoes the identity on the response, and
	// serves the trace store at GET /debug/traces. nil disables tracing
	// (requests cost two context lookups and nothing else).
	Tracer *trace.Tracer
	// Sched, when non-nil, folds the global refresh scheduler into
	// GET /metrics: its snapshot under the "sched" key of the JSON
	// document, and its tsr_sched_* series appended to the Prometheus
	// exposition.
	Sched SchedSource
}

// SchedSource is what obs needs from the refresh scheduler. It is an
// interface (satisfied by *sched.Scheduler) so the dependency points
// the right way: sched uses obs histograms, obs knows nothing of sched.
type SchedSource interface {
	// SchedSnapshot returns the JSON-marshalable scheduler state.
	SchedSnapshot() any
	// WriteSchedPrometheus appends the scheduler's series in Prometheus
	// text exposition format.
	WriteSchedPrometheus(w io.Writer)
}

// Obs wraps an http.Handler with the metrics subsystem and admission
// control, and serves the registry at GET /metrics.
type Obs struct {
	metrics    *Metrics
	max        int64
	retryAfter string
	tracer     *trace.Tracer
	sched      SchedSource
}

// New builds an Obs with a fresh Metrics registry. When a Tracer is
// supplied its "slow" always-keep rule is wired to this registry's
// per-route p99, so the traces kept are exactly the ones the latency
// histograms flag as outliers.
func New(opts Options) *Obs {
	retry := opts.RetryAfter
	if retry <= 0 {
		retry = time.Second
	}
	secs := int64((retry + time.Second - 1) / time.Second)
	o := &Obs{
		metrics:    NewMetrics(),
		max:        opts.MaxInflight,
		retryAfter: strconv.FormatInt(secs, 10),
		tracer:     opts.Tracer,
		sched:      opts.Sched,
	}
	if o.tracer != nil {
		m := o.metrics
		o.tracer.SetSlow(func(root string, d time.Duration) bool {
			th := m.SlowThreshold(root)
			return th > 0 && d > th
		})
	}
	return o
}

// Tracer returns the wired tracer (nil when tracing is disabled).
func (o *Obs) Tracer() *trace.Tracer { return o.tracer }

// Metrics exposes the registry (for tests and in-process reporting).
func (o *Obs) Metrics() *Metrics { return o.metrics }

// Snapshot reads the full metrics document.
func (o *Obs) Snapshot() Snapshot {
	s := o.metrics.Snapshot()
	s.MaxInflight = o.max
	if o.sched != nil {
		s.Sched = o.sched.SchedSnapshot()
	}
	return s
}

// Wrap returns next wrapped with metrics + admission control, plus the
// GET /metrics endpoint. Request flow:
//
//  1. GET /metrics is answered from the registry (never shed — the
//     one endpoint that must work during an overload is the one that
//     shows the overload).
//  2. /healthz bypasses admission control too: load shedding must not
//     make the daemon look dead to its orchestrator. It is still
//     measured.
//  3. Everything else passes the in-flight gate: a CAS increment up to
//     MaxInflight, or 429 + Retry-After and a shed count.
//  4. Served requests record latency and status class per route, and
//     — with a Tracer — run under a server span carrying the route key,
//     joined to the caller's trace when the request headers name one.
func (o *Obs) Wrap(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/metrics" && (r.Method == http.MethodGet || r.Method == http.MethodHead) {
			o.serveMetrics(w, r)
			return
		}
		if o.tracer != nil && (r.Method == http.MethodGet || r.Method == http.MethodHead) &&
			(r.URL.Path == "/debug/traces" || strings.HasPrefix(r.URL.Path, "/debug/traces/")) {
			o.serveTraces(w, r)
			return
		}
		key := routeKey(r.Method, r.URL.Path)
		ctx := r.Context()
		if o.tracer != nil {
			ctx = trace.NewContext(ctx, o.tracer)
			if tid, sid, ok := trace.Extract(r.Header); ok {
				ctx = trace.WithRemote(ctx, tid, sid)
			}
		}
		ctx, sp := trace.Start(ctx, key)
		defer sp.End()
		if sp != nil {
			sp.SetAttr("path", r.URL.Path)
			// Echo the identity before anything can write the response:
			// the client learns its trace ID even when the request is
			// shed, and can quote it against /debug/traces/{id}.
			w.Header().Set(trace.HeaderTraceID, sp.TraceID())
			w.Header().Set(trace.HeaderSpanID, sp.SpanID())
			r = r.WithContext(ctx)
		}
		// gauged: whether this request occupies an in-flight slot. When
		// admission is on, exempt paths (/healthz) bypass the gate AND
		// the gauge — a health probe must neither consume admission
		// capacity (at -max-inflight 1 a probe would shed every real
		// request) nor push the gauge past the bound acquire()
		// guarantees. With admission off the gauge is pure telemetry
		// and counts everything.
		gauged := true
		switch {
		case o.max > 0 && r.URL.Path != "/healthz":
			if !o.acquire() {
				o.metrics.ObserveShed(key)
				sp.MarkShed()
				sp.SetHTTPStatus(http.StatusTooManyRequests)
				w.Header().Set("Retry-After", o.retryAfter)
				w.Header().Set("Content-Type", "application/json")
				w.WriteHeader(http.StatusTooManyRequests)
				_ = json.NewEncoder(w).Encode(map[string]string{
					"error": "server at max in-flight capacity; retry after backoff",
				})
				return
			}
		case o.max > 0:
			gauged = false
		default:
			o.metrics.RequestStarted()
		}
		start := time.Now()
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		cb := &countingBody{rc: r.Body}
		r.Body = cb
		defer func() {
			d := time.Since(start)
			if gauged {
				o.metrics.RequestDone()
			}
			o.metrics.ObserveRequest(key, sw.status, d, cb.n.Load(), sw.bytes.Load())
			// Runs before the deferred sp.End() (LIFO), so the status
			// lands on the span before the root flush samples the trace.
			sp.SetHTTPStatus(sw.status)
		}()
		next.ServeHTTP(sw, r)
	})
}

// serveMetrics answers GET /metrics, content-negotiated: JSON by
// default, Prometheus text format 0.0.4 when the Accept header asks
// for it. Never shed — the one endpoint that must work during an
// overload is the one that shows the overload.
func (o *Obs) serveMetrics(w http.ResponseWriter, r *http.Request) {
	if wantsPrometheus(r.Header.Get("Accept")) {
		w.Header().Set("Content-Type", promContentType)
		WritePrometheus(w, o.Snapshot())
		if o.sched != nil {
			o.sched.WriteSchedPrometheus(w)
		}
		return
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(o.Snapshot())
}

// serveTraces answers GET /debug/traces (store stats, per-stage
// latency breakdown, and trace summaries) and GET /debug/traces/{id}
// (one stored trace as a span tree). Like /metrics it bypasses
// admission control: diagnosing an overload requires it.
func (o *Obs) serveTraces(w http.ResponseWriter, r *http.Request) {
	st := o.tracer.Store()
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if r.URL.Path == "/debug/traces" {
		_ = enc.Encode(struct {
			Stats  trace.StoreStats          `json:"stats"`
			Stages map[string]trace.StageAgg `json:"stages,omitempty"`
			Traces []trace.Summary           `json:"traces"`
		}{st.Stats(), st.Stages(), st.List()})
		return
	}
	id := strings.TrimPrefix(r.URL.Path, "/debug/traces/")
	td, ok := st.Get(id)
	if !ok {
		w.WriteHeader(http.StatusNotFound)
		_ = enc.Encode(map[string]string{
			"error": "no such trace (it may have been head-sampled out or evicted)",
		})
		return
	}
	_ = enc.Encode(td)
}

// acquire tries to reserve one in-flight slot; false means shed. The
// gate IS the metrics in-flight gauge (one CAS reserves the slot and
// moves the gauge together), so /metrics reports exactly the quantity
// admission is bounding and the bound is never transiently exceeded.
func (o *Obs) acquire() bool {
	for {
		cur := o.metrics.inflight.Load()
		if cur >= o.max {
			return false
		}
		if o.metrics.inflight.CompareAndSwap(cur, cur+1) {
			o.metrics.notePeak(cur + 1)
			return true
		}
	}
}

// statusWriter captures the response status and body byte count for
// the metrics record. The byte count is atomic because the streaming
// serve path can still be writing when a client disconnect unwinds the
// handler.
type statusWriter struct {
	http.ResponseWriter
	status int
	wrote  bool
	bytes  atomic.Int64
}

func (w *statusWriter) WriteHeader(code int) {
	if !w.wrote {
		w.status = code
		w.wrote = true
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	w.wrote = true
	n, err := w.ResponseWriter.Write(b)
	w.bytes.Add(int64(n))
	return n, err
}

// countingBody counts request-body bytes as the handler reads them.
type countingBody struct {
	rc io.ReadCloser
	n  atomic.Int64
}

func (b *countingBody) Read(p []byte) (int, error) {
	n, err := b.rc.Read(p)
	b.n.Add(int64(n))
	return n, err
}

func (b *countingBody) Close() error { return b.rc.Close() }

// routeKey normalizes a request path to its route pattern, so metrics
// aggregate per endpoint instead of per URL. It mirrors the route
// shapes of the tsr and edge handlers: the repo id and package name
// segments become {id} and {pkg}. Unmatched paths pass through but
// are clipped (segment count and byte length), so a single absurd URL
// cannot become a kilobytes-long registry key; the registry itself is
// additionally capped (see maxEndpoints).
func routeKey(method, path string) string {
	trimmed := strings.Trim(path, "/")
	if trimmed == "" {
		return method + " /"
	}
	parts := strings.Split(trimmed, "/")
	if len(parts) > 5 {
		parts = append(parts[:5], "...")
	}
	if parts[0] == "repos" && len(parts) >= 2 {
		parts[1] = "{id}"
		if len(parts) >= 4 && (parts[2] == "packages" || parts[2] == "scripts") {
			parts[3] = "{pkg}"
		}
	}
	key := method + " /" + strings.Join(parts, "/")
	if len(key) > 96 {
		key = key[:96] + "..."
	}
	return key
}
