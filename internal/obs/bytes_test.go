package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// Per-endpoint wire byte counters: request-body bytes read and
// response-body bytes written must land on the route's metrics and
// appear in both /metrics representations.
func TestByteCountersPerEndpoint(t *testing.T) {
	inner := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		body, _ := io.ReadAll(r.Body)
		w.WriteHeader(http.StatusOK)
		w.Write(body)
		w.Write([]byte("pong"))
	})
	o := New(Options{})
	handler := o.Wrap(inner)

	rec := httptest.NewRecorder()
	handler.ServeHTTP(rec, httptest.NewRequest("POST", "/policies", strings.NewReader("ping-body")))
	if rec.Code != http.StatusOK {
		t.Fatalf("got %d", rec.Code)
	}

	s := o.Snapshot()
	ep, ok := s.Endpoints["POST /policies"]
	if !ok {
		t.Fatalf("no endpoint entry; have %v", keysOf(s.Endpoints))
	}
	if want := int64(len("ping-body")); ep.BytesIn != want {
		t.Fatalf("bytes_in = %d, want %d", ep.BytesIn, want)
	}
	if want := int64(len("ping-bodypong")); ep.BytesOut != want {
		t.Fatalf("bytes_out = %d, want %d", ep.BytesOut, want)
	}

	// JSON representation carries the fields.
	rec = httptest.NewRecorder()
	handler.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	var doc Snapshot
	if err := json.Unmarshal(rec.Body.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Endpoints["POST /policies"].BytesIn != ep.BytesIn {
		t.Fatal("JSON /metrics lost bytes_in")
	}

	// Prometheus representation carries the counters.
	rec = httptest.NewRecorder()
	req := httptest.NewRequest("GET", "/metrics", nil)
	req.Header.Set("Accept", "text/plain")
	handler.ServeHTTP(rec, req)
	text := rec.Body.String()
	for _, want := range []string{
		`tsr_bytes_received_total{route="POST /policies"} 9`,
		`tsr_bytes_sent_total{route="POST /policies"} 13`,
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("prometheus output missing %q:\n%s", want, text)
		}
	}
}

func TestRouteKeyChunksEndpoint(t *testing.T) {
	got := routeKey("GET", "/repos/abc123/packages/openssl/chunks")
	if want := "GET /repos/{id}/packages/{pkg}/chunks"; got != want {
		t.Fatalf("routeKey = %q, want %q", got, want)
	}
}
