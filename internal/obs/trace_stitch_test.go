package obs_test

import (
	"context"
	"net/http"
	"net/http/httptest"
	"testing"

	"tsr/internal/obs"
	"tsr/internal/trace"
	"tsr/internal/tsr"
)

// TestWrapEchoesTraceIdentity pins the response-header half of the
// propagation contract: every traced response names the trace that
// served it, so a client (or the chaos checker) can quote the ID
// against /debug/traces/{id} — including responses that were shed.
func TestWrapEchoesTraceIdentity(t *testing.T) {
	tr := trace.NewTracer(trace.Config{Tier: "origin", HeadEvery: 1})
	o := obs.New(obs.Options{Tracer: tr, MaxInflight: 1})
	h := o.Wrap(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("ok"))
	}))

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/repos/r/index", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("HTTP %d", rec.Code)
	}
	tid := rec.Header().Get(trace.HeaderTraceID)
	if !trace.ValidTraceID(tid) {
		t.Fatalf("response %s = %q, not a well-formed trace ID", trace.HeaderTraceID, tid)
	}
	if sid := rec.Header().Get(trace.HeaderSpanID); !trace.ValidSpanID(sid) {
		t.Fatalf("response %s = %q, not a well-formed span ID", trace.HeaderSpanID, sid)
	}
	if _, ok := tr.Store().Get(tid); !ok {
		t.Fatalf("trace %s echoed on the response but absent from the store", tid)
	}
}

// TestWrapStitchesClientTraceOverHTTP proves the wire half: a
// tsr.Client call under a traced context injects X-Tsr-Trace-Id /
// X-Tsr-Span-Id, and the obs-wrapped server joins that trace — same
// trace ID, server root span parented on the client's HTTP span.
func TestWrapStitchesClientTraceOverHTTP(t *testing.T) {
	serverTr := trace.NewTracer(trace.Config{Tier: "origin", HeadEvery: 1})
	o := obs.New(obs.Options{Tracer: serverTr})
	srv := httptest.NewServer(o.Wrap(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("not an index"))
	})))
	defer srv.Close()

	clientTr := trace.NewTracer(trace.Config{Tier: "client", HeadEvery: 1})
	ctx := trace.NewContext(context.Background(), clientTr)
	ctx, root := trace.Start(ctx, "test.client")
	c := &tsr.Client{BaseURL: srv.URL, RepoID: "r"}
	// The fetch fails (the stub serves garbage, not a signed index);
	// only the request's trace headers are under test here.
	_, _, _ = c.FetchIndexTaggedCtx(ctx)
	root.End()

	// The server must have kept exactly one trace, under the CLIENT's
	// trace ID.
	st := serverTr.Store()
	if got := st.Stats().Kept; got != 1 {
		t.Fatalf("server kept %d traces, want 1", got)
	}
	td, ok := st.Get(root.TraceID())
	if !ok {
		t.Fatalf("server has no trace %s (the client's trace ID); it did not join the remote trace", root.TraceID())
	}
	serverRoot := td.Spans[0]
	if serverRoot.ParentID == "" || serverRoot.ParentID == root.SpanID() {
		// The direct parent must be the client's http.index span (a
		// child of root), not root itself and not empty.
		t.Fatalf("server root span parent = %q, want the client's http.index span ID", serverRoot.ParentID)
	}
	// Cross-check against the client's copy of the trace: its http.index
	// span ID is the server root's parent.
	ctd, ok := clientTr.Store().Get(root.TraceID())
	if !ok {
		t.Fatal("client tracer did not keep its trace")
	}
	var httpSpanID string
	for _, s := range ctd.Spans {
		if s.Name == "http.index" {
			httpSpanID = s.SpanID
		}
	}
	if httpSpanID == "" {
		t.Fatalf("client trace has no http.index span: %+v", ctd.Spans)
	}
	if serverRoot.ParentID != httpSpanID {
		t.Fatalf("server root parent = %s, want the client http.index span %s", serverRoot.ParentID, httpSpanID)
	}
}
