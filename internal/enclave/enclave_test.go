package enclave

import (
	"bytes"
	"crypto/sha256"
	"errors"
	"math"
	"testing"
	"time"

	"tsr/internal/keys"
)

func newTestPlatform(t *testing.T) *Platform {
	t.Helper()
	p, err := NewPlatform(keys.Shared.MustGet("platform-quoting"))
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestSealUnsealRoundtrip(t *testing.T) {
	p := newTestPlatform(t)
	e := p.Launch(MeasureCode("tsr-v1"))
	secret := []byte("metadata indexes + monotonic counter value")
	blob, err := e.Seal(secret)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(blob, secret) {
		t.Fatal("sealed blob leaks plaintext")
	}
	got, err := e.Unseal(blob)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, secret) {
		t.Fatalf("unsealed = %q", got)
	}
}

func TestUnsealRejectsDifferentEnclave(t *testing.T) {
	p := newTestPlatform(t)
	e1 := p.Launch(MeasureCode("tsr-v1"))
	e2 := p.Launch(MeasureCode("malicious-v1"))
	blob, err := e1.Seal([]byte("secret"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e2.Unseal(blob); !errors.Is(err, ErrSealBroken) {
		t.Fatalf("different code unsealed: err = %v", err)
	}
}

func TestUnsealRejectsDifferentPlatform(t *testing.T) {
	// "only the same enclave running on the same CPU can unseal" (§5.5).
	p1 := newTestPlatform(t)
	p2, err := NewPlatform(keys.Shared.MustGet("platform-quoting"))
	if err != nil {
		t.Fatal(err)
	}
	m := MeasureCode("tsr-v1")
	blob, err := p1.Launch(m).Seal([]byte("secret"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p2.Launch(m).Unseal(blob); !errors.Is(err, ErrSealBroken) {
		t.Fatalf("different platform unsealed: err = %v", err)
	}
}

func TestUnsealRejectsTamper(t *testing.T) {
	p := newTestPlatform(t)
	e := p.Launch(MeasureCode("tsr-v1"))
	blob, err := e.Seal([]byte("secret"))
	if err != nil {
		t.Fatal(err)
	}
	blob[len(blob)-1] ^= 0xFF
	if _, err := e.Unseal(blob); !errors.Is(err, ErrSealBroken) {
		t.Fatalf("err = %v", err)
	}
	if _, err := e.Unseal([]byte{1, 2}); !errors.Is(err, ErrSealBroken) {
		t.Fatalf("short blob: err = %v", err)
	}
}

func TestSealNondeterministicNonce(t *testing.T) {
	p := newTestPlatform(t)
	e := p.Launch(MeasureCode("tsr-v1"))
	b1, err := e.Seal([]byte("x"))
	if err != nil {
		t.Fatal(err)
	}
	b2, err := e.Seal([]byte("x"))
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(b1, b2) {
		t.Fatal("sealing reuses nonces")
	}
}

func TestAttestVerify(t *testing.T) {
	p := newTestPlatform(t)
	m := MeasureCode("tsr-v1")
	e := p.Launch(m)
	var rd [64]byte
	h := sha256.Sum256([]byte("tsr public signing key"))
	copy(rd[:], h[:])
	rep, err := e.Attest(rd)
	if err != nil {
		t.Fatal(err)
	}
	if err := rep.Verify(p.QuotingKey(), m); err != nil {
		t.Fatal(err)
	}
}

func TestAttestVerifyRejectsWrongMeasurement(t *testing.T) {
	p := newTestPlatform(t)
	e := p.Launch(MeasureCode("malicious"))
	rep, err := e.Attest([64]byte{})
	if err != nil {
		t.Fatal(err)
	}
	if err := rep.Verify(p.QuotingKey(), MeasureCode("tsr-v1")); !errors.Is(err, ErrBadReport) {
		t.Fatalf("err = %v", err)
	}
}

func TestAttestVerifyRejectsForgedReportData(t *testing.T) {
	p := newTestPlatform(t)
	m := MeasureCode("tsr-v1")
	rep, err := p.Launch(m).Attest([64]byte{1})
	if err != nil {
		t.Fatal(err)
	}
	rep.ReportData[0] = 2 // adversary swaps in their own key hash
	if err := rep.Verify(p.QuotingKey(), m); !errors.Is(err, ErrBadReport) {
		t.Fatalf("err = %v", err)
	}
}

func TestAttestVerifyRejectsWrongQuotingKey(t *testing.T) {
	p := newTestPlatform(t)
	m := MeasureCode("tsr-v1")
	rep, err := p.Launch(m).Attest([64]byte{})
	if err != nil {
		t.Fatal(err)
	}
	other := keys.Shared.MustGet("rogue-quoting")
	if err := rep.Verify(other.Public(), m); !errors.Is(err, ErrBadReport) {
		t.Fatalf("err = %v", err)
	}
}

func TestCostModelRegimes(t *testing.T) {
	m := DefaultCostModel()
	// In-EPC: constant base factor (paper: ~1.18x median).
	if f := m.Factor(1 << 20); f != 1.18 {
		t.Fatalf("small working set factor = %v", f)
	}
	if f := m.Factor(DefaultEPCBytes); f != 1.18 {
		t.Fatalf("at-EPC factor = %v", f)
	}
	// Just past EPC: between base and paging factor.
	f := m.Factor(DefaultEPCBytes + DefaultEPCBytes/2)
	if f <= 1.18 || f >= 1.96 {
		t.Fatalf("mid factor = %v", f)
	}
	// Far past EPC: saturates at paging factor (paper: ~1.96x).
	if f := m.Factor(10 * DefaultEPCBytes); math.Abs(f-1.96) > 1e-9 {
		t.Fatalf("saturated factor = %v", f)
	}
}

func TestCostModelMonotone(t *testing.T) {
	m := DefaultCostModel()
	prev := 0.0
	for _, ws := range []int64{1 << 10, 1 << 25, DefaultEPCBytes, DefaultEPCBytes * 3 / 2, DefaultEPCBytes * 2, DefaultEPCBytes * 4} {
		f := m.Factor(ws)
		if f < prev {
			t.Fatalf("factor decreased at ws=%d: %v < %v", ws, f, prev)
		}
		prev = f
	}
}

func TestCostModelOverhead(t *testing.T) {
	m := DefaultCostModel()
	native := 100 * time.Millisecond
	over := m.Overhead(1<<20, native)
	want := 18 * time.Millisecond
	if d := over - want; d < -time.Millisecond || d > time.Millisecond {
		t.Fatalf("overhead = %v, want ~%v", over, want)
	}
	// Disabled model (factor <= 1) adds nothing.
	none := CostModel{EPCBytes: DefaultEPCBytes, BaseFactor: 1.0, PagingFactor: 1.0}
	if got := none.Overhead(1<<20, native); got != 0 {
		t.Fatalf("no-op model overhead = %v", got)
	}
}

func TestExceedsEPC(t *testing.T) {
	m := DefaultCostModel()
	if m.ExceedsEPC(DefaultEPCBytes) {
		t.Fatal("exactly EPC should not exceed")
	}
	if !m.ExceedsEPC(DefaultEPCBytes + 1) {
		t.Fatal("EPC+1 should exceed")
	}
	disabled := CostModel{EPCBytes: 0}
	if disabled.ExceedsEPC(1 << 40) {
		t.Fatal("disabled model should never exceed")
	}
}

func TestMeasureCodeDistinct(t *testing.T) {
	if MeasureCode("a") == MeasureCode("b") {
		t.Fatal("measurements collide")
	}
	if MeasureCode("a") != MeasureCode("a") {
		t.Fatal("measurement not deterministic")
	}
}
