// Package enclave simulates the Intel SGX trusted execution environment
// TSR runs in (§4.4, §5). It models the three properties TSR relies on:
//
//   - confidentiality: signing keys generated inside the enclave never
//     leave it; sealed blobs are bound to the (platform, enclave
//     measurement) pair, like SGX sealing with the MRENCLAVE policy;
//   - attestation: a platform quoting key signs enclave reports so a
//     remote party can verify what code runs inside which platform
//     (standing in for EPID/DCAP and the IAS);
//   - the EPC limit: working sets larger than the enclave page cache
//     (128 MB on SGXv1) suffer paging overhead. The CostModel reproduces
//     the two regimes of Figure 12 — a constant ~1.18x in-enclave factor
//     and up to ~1.96x when a package exceeds the EPC.
package enclave

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/rand"
	"crypto/sha256"
	"errors"
	"fmt"
	"io"
	"time"

	"tsr/internal/keys"
)

// DefaultEPCBytes is the SGXv1 enclave page cache size the paper's
// testbed reserves ("We statically configured SGX to reserve 128 MB of
// RAM for the enclave page cache").
const DefaultEPCBytes = 128 << 20

// Error sentinels.
var (
	ErrSealBroken    = errors.New("enclave: sealed blob corrupt or from a different enclave")
	ErrBadReport     = errors.New("enclave: attestation report verification failed")
	ErrNotProvisoned = errors.New("enclave: platform has no quoting key")
)

// Measurement identifies enclave code (MRENCLAVE).
type Measurement [32]byte

// MeasureCode derives a Measurement from a code identity string.
func MeasureCode(identity string) Measurement {
	return Measurement(sha256.Sum256([]byte("enclave-code:" + identity)))
}

// Platform models one SGX-capable CPU: it owns the root sealing secret
// (fused into the CPU) and the quoting key used for remote attestation.
type Platform struct {
	sealRoot [32]byte
	quoting  *keys.Pair
}

// NewPlatform creates a platform with a fresh sealing root and the given
// quoting key (standing in for the provisioned EPID/DCAP key).
func NewPlatform(quoting *keys.Pair) (*Platform, error) {
	p := &Platform{quoting: quoting}
	if _, err := rand.Read(p.sealRoot[:]); err != nil {
		return nil, fmt.Errorf("enclave: platform init: %w", err)
	}
	return p, nil
}

// NewPlatformWithSealRoot creates a platform whose sealing root is
// caller-provided instead of random. Real SGX sealing keys are fused
// into the CPU and survive process restarts and reboots; a daemon that
// wants sealed state to be recoverable after a restart must therefore
// model "the same CPU" by reusing the root (tsrd persists it in its
// trusted host-state file, standing in for the hardware). The root is
// as sensitive as every blob sealed under it — it must never live in
// the untrusted store.
func NewPlatformWithSealRoot(quoting *keys.Pair, sealRoot [32]byte) *Platform {
	return &Platform{quoting: quoting, sealRoot: sealRoot}
}

// QuotingKey returns the public quoting key remote verifiers trust
// (the IAS root of trust analogue).
func (p *Platform) QuotingKey() *keys.Public { return p.quoting.Public() }

// Enclave is a launched enclave instance on a platform.
type Enclave struct {
	platform    *Platform
	measurement Measurement
	sealKey     [32]byte
}

// Launch instantiates enclave code on a platform. The sealing key is
// derived from the platform root and the code measurement, so only the
// same code on the same platform can unseal ("The SGX sealing ... uses a
// CPU- and enclave-specific key", §5.5).
func (p *Platform) Launch(m Measurement) *Enclave {
	h := sha256.New()
	h.Write(p.sealRoot[:])
	h.Write(m[:])
	e := &Enclave{platform: p, measurement: m}
	copy(e.sealKey[:], h.Sum(nil))
	return e
}

// Measurement returns the enclave's code measurement.
func (e *Enclave) Measurement() Measurement { return e.measurement }

// Seal encrypts data so that only this enclave (same code, same
// platform) can recover it. The ciphertext is AES-256-GCM with a random
// nonce prepended.
func (e *Enclave) Seal(data []byte) ([]byte, error) {
	gcm, err := e.aead()
	if err != nil {
		return nil, err
	}
	nonce := make([]byte, gcm.NonceSize())
	if _, err := io.ReadFull(rand.Reader, nonce); err != nil {
		return nil, fmt.Errorf("enclave: sealing: %w", err)
	}
	return gcm.Seal(nonce, nonce, data, e.measurement[:]), nil
}

// Unseal decrypts a blob produced by Seal on the same enclave identity.
func (e *Enclave) Unseal(blob []byte) ([]byte, error) {
	gcm, err := e.aead()
	if err != nil {
		return nil, err
	}
	if len(blob) < gcm.NonceSize() {
		return nil, fmt.Errorf("%w: too short", ErrSealBroken)
	}
	nonce, ct := blob[:gcm.NonceSize()], blob[gcm.NonceSize():]
	pt, err := gcm.Open(nil, nonce, ct, e.measurement[:])
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrSealBroken, err)
	}
	return pt, nil
}

func (e *Enclave) aead() (cipher.AEAD, error) {
	block, err := aes.NewCipher(e.sealKey[:])
	if err != nil {
		return nil, fmt.Errorf("enclave: cipher: %w", err)
	}
	return cipher.NewGCM(block)
}

// Report is a remote attestation report: it binds enclave-chosen report
// data (e.g. the hash of a freshly generated public key) to the enclave
// measurement, signed by the platform quoting key.
type Report struct {
	Measurement Measurement
	ReportData  [64]byte
	KeyName     string
	Sig         []byte
}

// Attest produces a report over reportData.
func (e *Enclave) Attest(reportData [64]byte) (*Report, error) {
	if e.platform.quoting == nil {
		return nil, ErrNotProvisoned
	}
	r := &Report{
		Measurement: e.measurement,
		ReportData:  reportData,
		KeyName:     e.platform.quoting.Name,
	}
	sig, err := e.platform.quoting.Sign(r.message())
	if err != nil {
		return nil, err
	}
	r.Sig = sig
	return r, nil
}

func (r *Report) message() []byte {
	msg := make([]byte, 0, 32+64)
	msg = append(msg, r.Measurement[:]...)
	msg = append(msg, r.ReportData[:]...)
	return msg
}

// Verify checks the report signature and that the reported measurement
// matches the expected code identity. This is what the OS owner does
// during policy deployment (Figure 7, step 1): "ensuring that TSR
// executes inside an enclave on the genuine Intel CPU".
func (r *Report) Verify(quoting *keys.Public, expected Measurement) error {
	if r.Measurement != expected {
		return fmt.Errorf("%w: measurement mismatch (got %x..., want %x...)",
			ErrBadReport, r.Measurement[:4], expected[:4])
	}
	if err := quoting.Verify(r.message(), r.Sig); err != nil {
		return fmt.Errorf("%w: %v", ErrBadReport, err)
	}
	return nil
}

// CostModel computes the virtual-time overhead of executing inside the
// enclave. Calibrated to the paper's Figure 12:
//
//   - packages fitting in the EPC run ~1.12-1.18x slower inside SGX
//     (transition and MEE overhead);
//   - packages whose working set exceeds the EPC pay EPC paging,
//     raising the factor to ~1.96x at the top percentiles.
type CostModel struct {
	// EPCBytes is the usable enclave page cache size.
	EPCBytes int64
	// BaseFactor is the in-EPC slowdown factor (>= 1).
	BaseFactor float64
	// PagingFactor is the asymptotic slowdown for working sets far
	// beyond the EPC.
	PagingFactor float64
}

// DefaultCostModel returns the model calibrated to the paper's testbed.
func DefaultCostModel() CostModel {
	return CostModel{
		EPCBytes:     DefaultEPCBytes,
		BaseFactor:   1.18,
		PagingFactor: 1.96,
	}
}

// Factor returns the slowdown factor for a given working-set size.
// Below the EPC it is BaseFactor; above, it ramps linearly with the
// fraction of the working set that does not fit, saturating at
// PagingFactor once the working set is twice the EPC.
func (m CostModel) Factor(workingSet int64) float64 {
	if m.EPCBytes <= 0 || workingSet <= m.EPCBytes {
		return m.BaseFactor
	}
	excess := float64(workingSet-m.EPCBytes) / float64(m.EPCBytes)
	if excess > 1 {
		excess = 1
	}
	return m.BaseFactor + (m.PagingFactor-m.BaseFactor)*excess
}

// SharedFactor returns the slowdown factor when several packages are
// sanitized concurrently inside one enclave. Worker threads share the
// EPC, so paging pressure is driven by the combined working set of the
// batch, not by each package alone: a batch of small packages can
// collectively spill out of the EPC even though none would on its own.
func (m CostModel) SharedFactor(workingSets []int64) float64 {
	var sum int64
	for _, ws := range workingSets {
		sum += ws
	}
	return m.Factor(sum)
}

// Overhead converts a natively measured duration into the extra virtual
// time SGX execution would add for the given working set.
func (m CostModel) Overhead(workingSet int64, native time.Duration) time.Duration {
	f := m.Factor(workingSet)
	if f <= 1 {
		return 0
	}
	return time.Duration(float64(native) * (f - 1))
}

// ExceedsEPC reports whether a working set spills out of the EPC — the
// "Exceeds EPC" marker of Figure 8.
func (m CostModel) ExceedsEPC(workingSet int64) bool {
	return m.EPCBytes > 0 && workingSet > m.EPCBytes
}
