package netsim

import (
	"math"
	"math/rand"
	"sync"
)

// RNG is a deterministic random source with the distributions used by the
// synthetic workload generator and the latency model. It wraps math/rand
// with a mutex so that concurrent experiment goroutines draw from a single
// reproducible stream.
type RNG struct {
	mu sync.Mutex
	r  *rand.Rand
}

// NewRNG returns a deterministic RNG seeded with seed.
func NewRNG(seed int64) *RNG {
	return &RNG{r: rand.New(rand.NewSource(seed))}
}

// Intn returns a uniform int in [0, n). It panics if n <= 0, matching
// math/rand semantics.
func (g *RNG) Intn(n int) int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.r.Intn(n)
}

// Int63n returns a uniform int64 in [0, n).
func (g *RNG) Int63n(n int64) int64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.r.Int63n(n)
}

// Float64 returns a uniform float64 in [0, 1).
func (g *RNG) Float64() float64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.r.Float64()
}

// NormFloat64 returns a standard normal variate.
func (g *RNG) NormFloat64() float64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.r.NormFloat64()
}

// LogNormal returns a log-normal variate with the given location mu and
// scale sigma of the underlying normal. Package sizes and file counts in
// real repositories are heavy-tailed; the paper's Figures 8-9 span four
// orders of magnitude, which a log-normal reproduces.
func (g *RNG) LogNormal(mu, sigma float64) float64 {
	return math.Exp(mu + sigma*g.NormFloat64())
}

// Pareto returns a Pareto(xm, alpha) variate, used for the extreme package
// size tail (the packages that exceed the SGX EPC in Figure 12).
func (g *RNG) Pareto(xm, alpha float64) float64 {
	u := g.Float64()
	for u == 0 {
		u = g.Float64()
	}
	return xm / math.Pow(u, 1/alpha)
}

// Jitter returns a multiplicative jitter factor in [1-f, 1+f].
func (g *RNG) Jitter(f float64) float64 {
	return 1 + f*(2*g.Float64()-1)
}

// Perm returns a random permutation of [0, n).
func (g *RNG) Perm(n int) []int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.r.Perm(n)
}

// Shuffle pseudo-randomizes the order of n elements using swap.
func (g *RNG) Shuffle(n int, swap func(i, j int)) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.r.Shuffle(n, swap)
}
