// Package netsim provides deterministic simulation primitives used across
// the TSR reproduction: a virtual clock, a seeded random source with the
// distributions the workload generator needs, and a wide-area network
// latency model calibrated to the paper's mirror experiments.
//
// All experiments that involve network transfers or SGX overhead charge
// *virtual* time through these primitives so that benchmark results are
// reproducible on any machine, while CPU-bound work (sanitization, crypto)
// is measured for real.
package netsim

import (
	"sync"
	"time"
)

// Clock abstracts time so experiments can run on virtual time.
type Clock interface {
	// Now returns the current (possibly virtual) time.
	Now() time.Time
	// Sleep advances the clock by d. On a real clock it blocks; on a
	// virtual clock it advances instantly.
	Sleep(d time.Duration)
}

// RealClock is a Clock backed by the wall clock.
type RealClock struct{}

// Now implements Clock.
//
//lint:allow detrand RealClock IS the real-clock escape hatch; deterministic code injects SimClock instead
func (RealClock) Now() time.Time { return time.Now() }

// Sleep implements Clock.
func (RealClock) Sleep(d time.Duration) { time.Sleep(d) }

// VirtualClock is a deterministic Clock that advances only when Sleep or
// Advance is called. The zero value is ready to use and starts at the zero
// time. VirtualClock is safe for concurrent use.
type VirtualClock struct {
	mu  sync.Mutex
	now time.Time
}

// NewVirtualClock returns a virtual clock starting at start.
func NewVirtualClock(start time.Time) *VirtualClock {
	return &VirtualClock{now: start}
}

// Now implements Clock.
func (c *VirtualClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// Sleep implements Clock by advancing the virtual time by d.
func (c *VirtualClock) Sleep(d time.Duration) { c.Advance(d) }

// Advance moves the virtual time forward by d. Negative durations are
// ignored so that a buggy caller cannot move time backwards.
func (c *VirtualClock) Advance(d time.Duration) {
	if d <= 0 {
		return
	}
	c.mu.Lock()
	c.now = c.now.Add(d)
	c.mu.Unlock()
}
