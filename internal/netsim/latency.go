package netsim

import (
	"fmt"
	"time"
)

// Continent identifies the coarse geographic location of a host. The
// paper's Figure 13 measures quorum latency with mirrors in Europe, North
// America, and Asia, with the TSR instance deployed in Europe.
type Continent int

const (
	// Europe is where the paper's TSR instance runs.
	Europe Continent = iota
	// NorthAmerica hosts the mid-distance mirrors.
	NorthAmerica
	// Asia hosts the far mirrors.
	Asia
	// SouthAmerica and Oceania host no mirrors in the paper's testbed;
	// they exist so the edge replication tier can place replicas (and
	// clients) on continents the mirror fleet never reaches.
	SouthAmerica
	Oceania
	numContinents
)

// String implements fmt.Stringer.
func (c Continent) String() string {
	switch c {
	case Europe:
		return "Europe"
	case NorthAmerica:
		return "North America"
	case Asia:
		return "Asia"
	case SouthAmerica:
		return "South America"
	case Oceania:
		return "Oceania"
	default:
		return fmt.Sprintf("Continent(%d)", int(c))
	}
}

// Continents lists all modeled continents. The paper's three mirror
// continents come first, so code indexing the historical trio (e.g.
// Figure 13's mirror placement) keeps its meaning.
func Continents() []Continent {
	return []Continent{Europe, NorthAmerica, Asia, SouthAmerica, Oceania}
}

// LinkModel computes transfer durations between continents. RTTs are
// calibrated to the paper: the intra-continent mirror used in §6.1 has an
// average network latency of 26.4 ms, and nine mirrors across three
// continents reach quorum in about 2.2 s.
type LinkModel struct {
	// RTT holds the round-trip time matrix between continents.
	RTT [numContinents][numContinents]time.Duration
	// Bandwidth is the modeled bottleneck bandwidth in bytes/second
	// used when the per-path matrix BW is zero for a pair.
	Bandwidth float64
	// BW optionally refines bandwidth per continent pair; WAN paths to
	// far continents are slower than intra-continent ones.
	BW [numContinents][numContinents]float64
	// JitterFrac is the fraction of multiplicative jitter applied per
	// request (0.1 means +-10%).
	JitterFrac float64
	// RNG supplies jitter; if nil, transfers are jitter-free.
	RNG *RNG
}

// DefaultLinkModel returns the latency model calibrated to the paper's
// testbed (10 Gb NIC, 20 Gb/s switched network; throttled by WAN paths for
// cross-continent mirrors).
func DefaultLinkModel(rng *RNG) *LinkModel {
	m := &LinkModel{
		Bandwidth:  12.5e6, // 100 Mb/s default effective throughput
		JitterFrac: 0.10,
		RNG:        rng,
	}
	set := func(a, b Continent, rtt time.Duration, bw float64) {
		m.RTT[a][b] = rtt
		m.RTT[b][a] = rtt
		m.BW[a][b] = bw
		m.BW[b][a] = bw
	}
	set(Europe, Europe, 26400*time.Microsecond, 14e6) // paper: 26.4 ms avg
	set(NorthAmerica, NorthAmerica, 25*time.Millisecond, 12e6)
	set(Asia, Asia, 30*time.Millisecond, 12e6)
	set(Europe, NorthAmerica, 95*time.Millisecond, 6e6)
	set(Europe, Asia, 240*time.Millisecond, 4e6)
	set(NorthAmerica, Asia, 160*time.Millisecond, 5e6)
	// Edge-tier continents (public RTT measurements, same order of
	// magnitude as the paper's WAN paths).
	set(SouthAmerica, SouthAmerica, 35*time.Millisecond, 10e6)
	set(Oceania, Oceania, 32*time.Millisecond, 10e6)
	set(Europe, SouthAmerica, 210*time.Millisecond, 4e6)
	set(Europe, Oceania, 280*time.Millisecond, 3.5e6)
	set(NorthAmerica, SouthAmerica, 140*time.Millisecond, 5e6)
	set(NorthAmerica, Oceania, 175*time.Millisecond, 4.5e6)
	set(Asia, SouthAmerica, 310*time.Millisecond, 3e6)
	set(Asia, Oceania, 120*time.Millisecond, 5e6)
	set(SouthAmerica, Oceania, 240*time.Millisecond, 3.5e6)
	return m
}

// DataCenterLinkModel returns a model for two hosts in the same data
// center, used by the Figure 11 end-to-end installation experiment
// ("located in the same data center").
func DataCenterLinkModel(rng *RNG) *LinkModel {
	m := &LinkModel{
		Bandwidth:  1.25e9, // 10 Gb/s NIC
		JitterFrac: 0.05,
		RNG:        rng,
	}
	for a := Continent(0); a < numContinents; a++ {
		for b := Continent(0); b < numContinents; b++ {
			m.RTT[a][b] = 200 * time.Microsecond
		}
	}
	return m
}

// RequestResponse returns the modeled duration of a request/response
// exchange transferring respBytes from b to a: one RTT for the
// request + first byte, plus serialization of the payload, plus jitter.
func (m *LinkModel) RequestResponse(a, b Continent, respBytes int64) time.Duration {
	return m.RequestResponseShared(a, b, respBytes, 1)
}

// RequestResponseBatch models n request/response exchanges issued at
// the same instant, transferring totalBytes in aggregate from b to a:
// the batch costs one round trip plus the aggregate payload at the
// path bandwidth, and zero when the batch is empty. Because the link
// is work-conserving, the duration deliberately does not otherwise
// depend on n — n transfers totaling B bytes finish together exactly
// when one transfer of B bytes would. The batch saves the n-1 round
// trips that issuing the transfers sequentially would have paid, which
// is where the refresh worker pool gets its modeled download speedup.
func (m *LinkModel) RequestResponseBatch(a, b Continent, totalBytes int64, n int) time.Duration {
	if n < 1 {
		return 0
	}
	return m.RequestResponseShared(a, b, totalBytes, 1)
}

// RequestResponseShared models a transfer that shares its path with
// concurrent-1 other transfers started at the same time (the quorum
// reader downloads the metadata index from f+1 mirrors in parallel, so
// each transfer sees a fraction of the path bandwidth).
func (m *LinkModel) RequestResponseShared(a, b Continent, respBytes int64, concurrent int) time.Duration {
	if concurrent < 1 {
		concurrent = 1
	}
	d := m.RTT[a][b]
	bw := m.BW[a][b]
	if bw == 0 {
		bw = m.Bandwidth
	}
	if bw > 0 && respBytes > 0 {
		d += time.Duration(float64(respBytes) * float64(concurrent) / bw * float64(time.Second))
	}
	if m.RNG != nil && m.JitterFrac > 0 {
		d = time.Duration(float64(d) * m.RNG.Jitter(m.JitterFrac))
	}
	if d < 0 {
		d = 0
	}
	return d
}
