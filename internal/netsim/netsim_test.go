package netsim

import (
	"math"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestVirtualClockAdvance(t *testing.T) {
	start := time.Date(2020, 12, 1, 0, 0, 0, 0, time.UTC)
	c := NewVirtualClock(start)
	if got := c.Now(); !got.Equal(start) {
		t.Fatalf("Now() = %v, want %v", got, start)
	}
	c.Sleep(5 * time.Second)
	if got := c.Now(); !got.Equal(start.Add(5 * time.Second)) {
		t.Fatalf("after Sleep, Now() = %v", got)
	}
	c.Advance(-time.Hour)
	if got := c.Now(); !got.Equal(start.Add(5 * time.Second)) {
		t.Fatalf("negative Advance moved time: %v", got)
	}
}

func TestVirtualClockConcurrent(t *testing.T) {
	c := &VirtualClock{}
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				c.Advance(time.Millisecond)
			}
		}()
	}
	wg.Wait()
	want := (time.Time{}).Add(1600 * time.Millisecond)
	if got := c.Now(); !got.Equal(want) {
		t.Fatalf("Now() = %v, want %v", got, want)
	}
}

func TestVirtualClockZeroValue(t *testing.T) {
	var c VirtualClock
	before := c.Now()
	c.Sleep(time.Minute)
	if got := c.Now().Sub(before); got != time.Minute {
		t.Fatalf("zero-value clock advanced %v, want 1m", got)
	}
}

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 100; i++ {
		if x, y := a.Float64(), b.Float64(); x != y {
			t.Fatalf("draw %d: %v != %v", i, x, y)
		}
	}
}

func TestRNGLogNormalPositive(t *testing.T) {
	g := NewRNG(1)
	f := func(mu, sigma float64) bool {
		mu = math.Mod(mu, 10)
		sigma = math.Abs(math.Mod(sigma, 3))
		v := g.LogNormal(mu, sigma)
		return v > 0 && !math.IsNaN(v) && !math.IsInf(v, 0)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRNGParetoTail(t *testing.T) {
	g := NewRNG(7)
	for i := 0; i < 1000; i++ {
		if v := g.Pareto(2, 1.5); v < 2 {
			t.Fatalf("Pareto(2, 1.5) = %v < xm", v)
		}
	}
}

func TestRNGJitterBounds(t *testing.T) {
	g := NewRNG(9)
	for i := 0; i < 1000; i++ {
		j := g.Jitter(0.1)
		if j < 0.9 || j > 1.1 {
			t.Fatalf("jitter %v outside [0.9, 1.1]", j)
		}
	}
}

func TestDiurnalCurveShape(t *testing.T) {
	c := DefaultDiurnal(24 * time.Hour)
	peak := c.At(time.Duration(c.PeakAt * float64(24*time.Hour)))
	trough := c.At(time.Duration((c.PeakAt + 0.5) * float64(24*time.Hour)))
	if math.Abs(peak-c.Peak) > 1e-9 {
		t.Fatalf("At(peak phase) = %v, want %v", peak, c.Peak)
	}
	if math.Abs(trough-c.Base) > 1e-9 {
		t.Fatalf("At(trough phase) = %v, want %v", trough, c.Base)
	}
	// Every sample stays inside [Base, Peak] and the curve is periodic.
	for i := 0; i < 100; i++ {
		d := time.Duration(i) * 17 * time.Minute
		v := c.At(d)
		if v < c.Base-1e-9 || v > c.Peak+1e-9 {
			t.Fatalf("At(%v) = %v outside [%v, %v]", d, v, c.Base, c.Peak)
		}
		if w := c.At(d + 24*time.Hour); math.Abs(v-w) > 1e-9 {
			t.Fatalf("curve not periodic at %v: %v != %v", d, v, w)
		}
	}
}

func TestDiurnalCurveDegenerate(t *testing.T) {
	var zero DiurnalCurve
	if got := zero.At(time.Hour); got != 1.0 {
		t.Fatalf("zero-value curve = %v, want flat 1.0", got)
	}
	flat := DiurnalCurve{Base: 0.5, Peak: 0.5, Period: time.Hour}
	if got := flat.At(time.Minute); got != 0.5 {
		t.Fatalf("flat curve = %v, want 0.5", got)
	}
}

func TestContinentString(t *testing.T) {
	tests := []struct {
		c    Continent
		want string
	}{
		{Europe, "Europe"},
		{NorthAmerica, "North America"},
		{Asia, "Asia"},
		{Continent(99), "Continent(99)"},
	}
	for _, tt := range tests {
		if got := tt.c.String(); got != tt.want {
			t.Errorf("%d.String() = %q, want %q", int(tt.c), got, tt.want)
		}
	}
}

func TestDefaultLinkModelSymmetry(t *testing.T) {
	m := DefaultLinkModel(nil)
	for _, a := range Continents() {
		for _, b := range Continents() {
			if m.RTT[a][b] != m.RTT[b][a] {
				t.Errorf("RTT[%v][%v] != RTT[%v][%v]", a, b, b, a)
			}
			if m.RTT[a][b] <= 0 {
				t.Errorf("RTT[%v][%v] = %v, want > 0", a, b, m.RTT[a][b])
			}
		}
	}
}

func TestDefaultLinkModelPaperCalibration(t *testing.T) {
	m := DefaultLinkModel(nil)
	// §6.1: "an official Alpine mirror located on the same continent (an
	// average network latency 26.4 ms)".
	if got := m.RTT[Europe][Europe]; got != 26400*time.Microsecond {
		t.Fatalf("intra-Europe RTT = %v, want 26.4ms", got)
	}
	// Asia must be the farthest from the Europe-based TSR.
	if m.RTT[Europe][Asia] <= m.RTT[Europe][NorthAmerica] {
		t.Fatalf("expected Asia RTT > NA RTT, got %v <= %v",
			m.RTT[Europe][Asia], m.RTT[Europe][NorthAmerica])
	}
}

func TestRequestResponseNoJitterIsRTTPlusTransfer(t *testing.T) {
	m := DefaultLinkModel(nil)
	sz := int64(m.BW[Europe][Europe]) // exactly 1 second at path bandwidth
	got := m.RequestResponse(Europe, Europe, sz)
	want := m.RTT[Europe][Europe] + time.Second
	if got != want {
		t.Fatalf("RequestResponse = %v, want %v", got, want)
	}
}

func TestRequestResponseSharedScalesTransfer(t *testing.T) {
	m := DefaultLinkModel(nil)
	sz := int64(1 << 20)
	one := m.RequestResponseShared(Europe, Europe, sz, 1)
	five := m.RequestResponseShared(Europe, Europe, sz, 5)
	rtt := m.RTT[Europe][Europe]
	// Transfer portion scales linearly with concurrency (allowing for
	// float rounding in the duration conversion).
	got, want := five-rtt, 5*(one-rtt)
	if diff := got - want; diff < -time.Microsecond || diff > time.Microsecond {
		t.Fatalf("shared transfer = %v, want %v", got, want)
	}
	// concurrent < 1 clamps to 1.
	if m.RequestResponseShared(Europe, Europe, sz, 0) != one {
		t.Fatal("concurrent=0 not clamped")
	}
}

func TestPerPathBandwidthSlowerCrossContinent(t *testing.T) {
	m := DefaultLinkModel(nil)
	sz := int64(8 << 20)
	eu := m.RequestResponse(Europe, Europe, sz) - m.RTT[Europe][Europe]
	asia := m.RequestResponse(Europe, Asia, sz) - m.RTT[Europe][Asia]
	if asia <= eu {
		t.Fatalf("Asia transfer %v not slower than intra-Europe %v", asia, eu)
	}
}

func TestRequestResponseMonotonicInSize(t *testing.T) {
	m := DefaultLinkModel(nil)
	prev := time.Duration(-1)
	for _, sz := range []int64{0, 1 << 10, 1 << 20, 1 << 25} {
		d := m.RequestResponse(Europe, Asia, sz)
		if d < prev {
			t.Fatalf("duration decreased with size: %v after %v", d, prev)
		}
		prev = d
	}
}

func TestRequestResponseJitterBounded(t *testing.T) {
	g := NewRNG(3)
	m := DefaultLinkModel(g)
	base := DefaultLinkModel(nil).RequestResponse(Europe, NorthAmerica, 1<<20)
	for i := 0; i < 200; i++ {
		d := m.RequestResponse(Europe, NorthAmerica, 1<<20)
		lo := time.Duration(float64(base) * 0.89)
		hi := time.Duration(float64(base) * 1.11)
		if d < lo || d > hi {
			t.Fatalf("jittered duration %v outside [%v, %v]", d, lo, hi)
		}
	}
}

func TestDataCenterModelFasterThanWAN(t *testing.T) {
	dc := DataCenterLinkModel(nil)
	wan := DefaultLinkModel(nil)
	sz := int64(1 << 20)
	if dc.RequestResponse(Europe, Europe, sz) >= wan.RequestResponse(Europe, Europe, sz) {
		t.Fatal("data-center transfer should be faster than WAN")
	}
}
