package netsim

import (
	"math"
	"time"
)

// DiurnalCurve models the daily load shape a production repository
// fleet sees: traffic oscillates between a nightly base and a daytime
// peak following a raised cosine. The soak harness scales its offered
// client load by At(elapsed), so churn events land on a realistic
// moving background instead of a flat request rate.
type DiurnalCurve struct {
	// Base is the load multiplier at the bottom of the trough.
	Base float64
	// Peak is the multiplier at the top of the daily peak.
	Peak float64
	// Period is the cycle length (24h for a real diurnal cycle; soak
	// runs compress it so a short run still sweeps trough and peak).
	Period time.Duration
	// PeakAt is the phase [0,1) within the period where the peak lands
	// (0.58 ≈ early afternoon when the period starts at midnight).
	PeakAt float64
}

// DefaultDiurnal is the curve used by the fleet-soak experiment:
// traffic swings between 35% and 100% of peak over one period.
func DefaultDiurnal(period time.Duration) DiurnalCurve {
	return DiurnalCurve{Base: 0.35, Peak: 1.0, Period: period, PeakAt: 0.58}
}

// At returns the load multiplier after elapsed time: a raised cosine
// between Base and Peak, peaking at the PeakAt phase. Degenerate
// configurations fall back to a flat curve at Peak (or 1.0 when that
// is unset too), so a zero value never divides by zero.
func (c DiurnalCurve) At(elapsed time.Duration) float64 {
	if c.Period <= 0 || c.Peak <= c.Base {
		if c.Peak > 0 {
			return c.Peak
		}
		return 1.0
	}
	phase := math.Mod(elapsed.Seconds()/c.Period.Seconds(), 1.0)
	if phase < 0 {
		phase += 1.0
	}
	// cos(2π(phase-PeakAt)) is 1 exactly at the peak phase and -1 half a
	// period away, mapping onto [Base, Peak].
	return c.Base + (c.Peak-c.Base)*0.5*(1+math.Cos(2*math.Pi*(phase-c.PeakAt)))
}
