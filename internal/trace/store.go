package trace

import (
	"sync"
	"time"
)

// Attr is one key/value span attribute.
type Attr struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// Link points at another span; Coalesced links mark flight followers
// whose result was produced under the leader's span.
type Link struct {
	TraceID   string `json:"trace_id"`
	SpanID    string `json:"span_id"`
	Coalesced bool   `json:"coalesced"`
}

// SpanData is the immutable stored form of a finished span.
type SpanData struct {
	TraceID    string    `json:"trace_id"`
	SpanID     string    `json:"span_id"`
	ParentID   string    `json:"parent_id,omitempty"`
	Name       string    `json:"name"`
	Tier       string    `json:"tier,omitempty"`
	Start      time.Time `json:"start"`
	DurationMs float64   `json:"duration_ms"`
	Attrs      []Attr    `json:"attrs,omitempty"`
	Error      string    `json:"error,omitempty"`
	Shed       bool      `json:"shed,omitempty"`
	Link       *Link     `json:"link,omitempty"`
	Unfinished bool      `json:"unfinished,omitempty"`
}

// TraceData is one stored trace: the spans of a trace ID, plus the
// keep decision that admitted it.
type TraceData struct {
	TraceID    string     `json:"trace_id"`
	Root       string     `json:"root"`
	Reason     string     `json:"reason"`
	Start      time.Time  `json:"start"`
	DurationMs float64    `json:"duration_ms"`
	Dropped    int        `json:"dropped_spans,omitempty"`
	Spans      []SpanData `json:"spans"`
}

// Summary is the per-trace line of GET /debug/traces.
type Summary struct {
	TraceID    string    `json:"trace_id"`
	Root       string    `json:"root"`
	Reason     string    `json:"reason"`
	Start      time.Time `json:"start"`
	DurationMs float64   `json:"duration_ms"`
	Spans      int       `json:"spans"`
}

// StoreStats counts the sampler's and store's decisions.
type StoreStats struct {
	// Kept counts traces admitted by the sampler (by keep reason in
	// ByReason); SampledOut counts clean traces head-sampling dropped.
	Kept       int64            `json:"kept"`
	SampledOut int64            `json:"sampled_out"`
	ByReason   map[string]int64 `json:"by_reason,omitempty"`
	// Merged counts flushes that joined an already-stored trace ID
	// (multi-tier traces sharing one store); Evicted counts FIFO
	// evictions past capacity; Stored is the current resident count.
	Merged  int64 `json:"merged"`
	Evicted int64 `json:"evicted"`
	Stored  int   `json:"stored"`
}

// StageAgg aggregates the duration of one span name across every kept
// trace — the per-stage latency breakdown.
type StageAgg struct {
	Count  int64   `json:"count"`
	MeanMs float64 `json:"mean_ms"`
	MaxMs  float64 `json:"max_ms"`
}

type stageAgg struct {
	count   int64
	totalMs float64
	maxMs   float64
}

// Store is the bounded in-memory trace store. Only kept traces touch
// its lock — the request hot path never does.
type Store struct {
	mu         sync.Mutex
	cap        int
	byID       map[string]*TraceData
	order      []string // FIFO of resident trace IDs
	kept       int64
	sampledOut int64
	merged     int64
	evicted    int64
	byReason   map[string]int64
	stages     map[string]*stageAgg
}

func newStore(cap int) *Store {
	return &Store{
		cap:      cap,
		byID:     make(map[string]*TraceData),
		byReason: make(map[string]int64),
		stages:   make(map[string]*stageAgg),
	}
}

func (s *Store) noteSampledOut() {
	s.mu.Lock()
	s.sampledOut++
	s.mu.Unlock()
}

// offer admits a kept trace. A trace ID already resident is merged
// (spans appended), which is how the tiers of an in-process chain —
// each flushing its own root — stitch into one stored trace.
func (s *Store) offer(td *TraceData) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.kept++
	s.byReason[td.Reason]++
	for _, sp := range td.Spans {
		agg := s.stages[sp.Name]
		if agg == nil {
			agg = &stageAgg{}
			s.stages[sp.Name] = agg
		}
		agg.count++
		agg.totalMs += sp.DurationMs
		if sp.DurationMs > agg.maxMs {
			agg.maxMs = sp.DurationMs
		}
	}
	if cur, ok := s.byID[td.TraceID]; ok {
		s.merged++
		cur.Spans = append(cur.Spans, td.Spans...)
		cur.Dropped += td.Dropped
		if td.DurationMs > cur.DurationMs {
			cur.DurationMs = td.DurationMs
		}
		return
	}
	s.byID[td.TraceID] = td
	s.order = append(s.order, td.TraceID)
	for len(s.order) > s.cap {
		victim := s.order[0]
		s.order = s.order[1:]
		delete(s.byID, victim)
		s.evicted++
	}
}

// List returns resident trace summaries, oldest first.
func (s *Store) List() []Summary {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Summary, 0, len(s.order))
	for _, id := range s.order {
		td := s.byID[id]
		out = append(out, Summary{
			TraceID:    td.TraceID,
			Root:       td.Root,
			Reason:     td.Reason,
			Start:      td.Start,
			DurationMs: td.DurationMs,
			Spans:      len(td.Spans),
		})
	}
	return out
}

// Get returns a copy of the stored trace for id.
func (s *Store) Get(id string) (TraceData, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	td, ok := s.byID[id]
	if !ok {
		return TraceData{}, false
	}
	out := *td
	out.Spans = append([]SpanData(nil), td.Spans...)
	return out, true
}

// Stats returns the sampler/store counters.
func (s *Store) Stats() StoreStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	byReason := make(map[string]int64, len(s.byReason))
	for k, v := range s.byReason {
		byReason[k] = v
	}
	return StoreStats{
		Kept:       s.kept,
		SampledOut: s.sampledOut,
		ByReason:   byReason,
		Merged:     s.merged,
		Evicted:    s.evicted,
		Stored:     len(s.byID),
	}
}

// Stages returns the per-span-name latency breakdown over every kept
// trace (not just the resident ones).
func (s *Store) Stages() map[string]StageAgg {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string]StageAgg, len(s.stages))
	for name, agg := range s.stages {
		out[name] = StageAgg{
			Count:  agg.count,
			MeanMs: agg.totalMs / float64(agg.count),
			MaxMs:  agg.maxMs,
		}
	}
	return out
}
