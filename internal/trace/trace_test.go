package trace

import (
	"context"
	"errors"
	"net/http"
	"sync"
	"testing"
	"time"
)

// keepAll builds a tracer that head-samples nothing out, so structure
// tests see every trace.
func keepAll(tier string) *Tracer {
	return NewTracer(Config{Tier: tier, HeadEvery: 1})
}

func TestIDWellFormedness(t *testing.T) {
	for i := 0; i < 64; i++ {
		if id := newTraceID(); !ValidTraceID(id) {
			t.Fatalf("newTraceID() = %q, not a valid trace ID", id)
		}
		if id := newSpanID(); !ValidSpanID(id) {
			t.Fatalf("newSpanID() = %q, not a valid span ID", id)
		}
	}
	for _, bad := range []string{"", "xyz", "ABCDEF0123456789ABCDEF0123456789", "0123456789abcdef0123456789abcde", "0123456789abcdef0123456789abcdeg"} {
		if ValidTraceID(bad) {
			t.Errorf("ValidTraceID(%q) = true, want false", bad)
		}
	}
	if ValidSpanID("0123456789abcdef0") || ValidSpanID("0123456789ABCDEF") {
		t.Error("ValidSpanID accepted a malformed ID")
	}
}

func TestUntracedContextIsNoop(t *testing.T) {
	ctx, sp := Start(context.Background(), "op")
	if sp != nil {
		t.Fatalf("Start without tracer returned a span: %+v", sp)
	}
	// Every method must be nil-safe.
	sp.SetAttr("k", "v")
	sp.SetAttrInt("n", 1)
	sp.SetError(errors.New("boom"))
	sp.MarkShed()
	sp.SetTier("edge")
	sp.SetHTTPStatus(500)
	sp.LinkCoalesced(nil)
	sp.End()
	if got := sp.TraceID(); got != "" {
		t.Errorf("nil span TraceID = %q, want empty", got)
	}
	h := make(http.Header)
	Inject(ctx, h)
	if len(h) != 0 {
		t.Errorf("Inject on untraced ctx wrote headers: %v", h)
	}
}

func TestParentingAndFlush(t *testing.T) {
	tr := keepAll("origin")
	ctx := NewContext(context.Background(), tr)
	ctx, root := Start(ctx, "server")
	cctx, child := Start(ctx, "stage")
	if child.TraceID() != root.TraceID() {
		t.Fatalf("child trace %q != root trace %q", child.TraceID(), root.TraceID())
	}
	_, grand := Start(cctx, "substage")
	grand.SetAttr("k", "v")
	grand.End()
	child.End()
	root.End()

	td, ok := tr.Store().Get(root.TraceID())
	if !ok {
		t.Fatalf("trace %q not stored", root.TraceID())
	}
	if len(td.Spans) != 3 {
		t.Fatalf("stored %d spans, want 3: %+v", len(td.Spans), td.Spans)
	}
	byName := map[string]SpanData{}
	for _, sp := range td.Spans {
		byName[sp.Name] = sp
	}
	if byName["server"].ParentID != "" {
		t.Errorf("root parent = %q, want empty", byName["server"].ParentID)
	}
	if byName["stage"].ParentID != byName["server"].SpanID {
		t.Errorf("stage parent = %q, want %q", byName["stage"].ParentID, byName["server"].SpanID)
	}
	if byName["substage"].ParentID != byName["stage"].SpanID {
		t.Errorf("substage parent = %q, want %q", byName["substage"].ParentID, byName["stage"].SpanID)
	}
	if byName["server"].Tier != "origin" {
		t.Errorf("tier = %q, want origin", byName["server"].Tier)
	}
	if td.Reason != KeepHead {
		t.Errorf("reason = %q, want %q", td.Reason, KeepHead)
	}
}

func TestHeaderRoundTripAndRemoteJoin(t *testing.T) {
	client := keepAll("client")
	ctx := NewContext(context.Background(), client)
	ctx, cs := Start(ctx, "client.call")
	h := make(http.Header)
	Inject(ctx, h)
	tid, sid, ok := Extract(h)
	if !ok || tid != cs.TraceID() || sid != cs.SpanID() {
		t.Fatalf("Extract = (%q, %q, %v), want (%q, %q, true)", tid, sid, ok, cs.TraceID(), cs.SpanID())
	}

	// The server tier joins the extracted identity.
	server := keepAll("edge")
	sctx := NewContext(context.Background(), server)
	sctx = WithRemote(sctx, tid, sid)
	_, ss := Start(sctx, "server.handle")
	if ss.TraceID() != cs.TraceID() {
		t.Fatalf("server trace %q did not join client trace %q", ss.TraceID(), cs.TraceID())
	}
	ss.End()
	cs.End()

	td, ok := server.Store().Get(cs.TraceID())
	if !ok {
		t.Fatal("server store missing the joined trace")
	}
	if td.Spans[0].ParentID != cs.SpanID() {
		t.Errorf("server root parent = %q, want remote span %q", td.Spans[0].ParentID, cs.SpanID())
	}

	// Malformed headers must not propagate.
	bad := make(http.Header)
	bad.Set(HeaderTraceID, "not-hex")
	bad.Set(HeaderSpanID, "0123456789abcdef")
	if _, _, ok := Extract(bad); ok {
		t.Error("Extract accepted a malformed trace ID")
	}
	if got := WithRemote(context.Background(), "zz", "yy"); got != context.Background() {
		t.Error("WithRemote stored an invalid identity")
	}
}

func TestAlwaysKeepReasons(t *testing.T) {
	cases := []struct {
		name   string
		mark   func(sp *Span)
		reason string
	}{
		{"error", func(sp *Span) { sp.SetError(errors.New("boom")) }, KeepError},
		{"shed", func(sp *Span) { sp.MarkShed() }, KeepShed},
		{"http5xx", func(sp *Span) { sp.SetHTTPStatus(503) }, KeepError},
	}
	for _, tc := range cases {
		// HeadEvery is huge so only the always-keep rule can admit it.
		tr := NewTracer(Config{Tier: "t", HeadEvery: 1 << 30})
		ctx := NewContext(context.Background(), tr)
		_, sp := Start(ctx, "op")
		tc.mark(sp)
		sp.End()
		td, ok := tr.Store().Get(sp.TraceID())
		if !ok {
			t.Errorf("%s: trace not kept", tc.name)
			continue
		}
		if td.Reason != tc.reason {
			t.Errorf("%s: reason = %q, want %q", tc.name, td.Reason, tc.reason)
		}
	}
}

func TestSlowKeepUsesPredicate(t *testing.T) {
	tr := NewTracer(Config{Tier: "t", HeadEvery: 1 << 30})
	var gotRoot string
	tr.SetSlow(func(root string, d time.Duration) bool {
		gotRoot = root
		return true
	})
	ctx := NewContext(context.Background(), tr)
	_, sp := Start(ctx, "GET /route")
	sp.End()
	td, ok := tr.Store().Get(sp.TraceID())
	if !ok || td.Reason != KeepSlow {
		t.Fatalf("slow trace not kept (ok=%v, reason=%q)", ok, td.Reason)
	}
	if gotRoot != "GET /route" {
		t.Errorf("slow predicate saw root %q, want GET /route", gotRoot)
	}
}

func TestHeadSamplingIsDeterministicPerTraceID(t *testing.T) {
	id := newTraceID()
	first := headKeep(id, 8)
	for i := 0; i < 10; i++ {
		if headKeep(id, 8) != first {
			t.Fatal("headKeep flip-flopped for one trace ID")
		}
	}
	if !headKeep(id, 1) {
		t.Error("headKeep(every=1) must keep everything")
	}
	// Over many IDs both outcomes occur.
	kept, dropped := 0, 0
	for i := 0; i < 256; i++ {
		if headKeep(newTraceID(), 4) {
			kept++
		} else {
			dropped++
		}
	}
	if kept == 0 || dropped == 0 {
		t.Errorf("head sampling degenerate: kept=%d dropped=%d of 256", kept, dropped)
	}
}

func TestStoreBoundsAndMerge(t *testing.T) {
	tr := NewTracer(Config{Tier: "t", Capacity: 4, HeadEvery: 1})
	var ids []string
	for i := 0; i < 6; i++ {
		ctx := NewContext(context.Background(), tr)
		_, sp := Start(ctx, "op")
		ids = append(ids, sp.TraceID())
		sp.End()
	}
	st := tr.Store().Stats()
	if st.Stored != 4 || st.Evicted != 2 {
		t.Fatalf("stats = %+v, want Stored=4 Evicted=2", st)
	}
	if _, ok := tr.Store().Get(ids[0]); ok {
		t.Error("oldest trace survived past capacity")
	}
	if _, ok := tr.Store().Get(ids[5]); !ok {
		t.Error("newest trace missing")
	}

	// A second flush with the same trace ID merges rather than evicts.
	ctx := NewContext(context.Background(), tr)
	ctx = WithRemote(ctx, ids[5], "0123456789abcdef")
	_, sp := Start(ctx, "tier2")
	sp.End()
	td, ok := tr.Store().Get(ids[5])
	if !ok || len(td.Spans) != 2 {
		t.Fatalf("merged trace has %d spans (ok=%v), want 2", len(td.Spans), ok)
	}
	if tr.Store().Stats().Merged != 1 {
		t.Errorf("Merged = %d, want 1", tr.Store().Stats().Merged)
	}
}

func TestSpanCapDropsChildren(t *testing.T) {
	tr := keepAll("t")
	ctx := NewContext(context.Background(), tr)
	ctx, root := Start(ctx, "root")
	for i := 0; i < maxSpansPerTrace+10; i++ {
		_, sp := Start(ctx, "child")
		sp.End() // nil-safe once the cap bites
	}
	root.End()
	td, ok := tr.Store().Get(root.TraceID())
	if !ok {
		t.Fatal("capped trace not stored")
	}
	if len(td.Spans) != maxSpansPerTrace {
		t.Errorf("stored %d spans, want cap %d", len(td.Spans), maxSpansPerTrace)
	}
	if td.Dropped != 11 {
		t.Errorf("Dropped = %d, want 11", td.Dropped)
	}
}

func TestCoalescedLink(t *testing.T) {
	tr := keepAll("edge")
	lctx := NewContext(context.Background(), tr)
	_, leader := Start(lctx, "edge.package")
	fctx := NewContext(context.Background(), tr)
	_, follower := Start(fctx, "edge.package")
	follower.LinkCoalesced(leader)
	follower.End()
	leader.End()

	td, ok := tr.Store().Get(follower.TraceID())
	if !ok {
		t.Fatal("follower trace not stored")
	}
	link := td.Spans[0].Link
	if link == nil || !link.Coalesced {
		t.Fatalf("follower span link = %+v, want coalesced", link)
	}
	if link.TraceID != leader.TraceID() || link.SpanID != leader.SpanID() {
		t.Errorf("link points at (%q,%q), want leader (%q,%q)",
			link.TraceID, link.SpanID, leader.TraceID(), leader.SpanID())
	}
}

func TestStagesAggregate(t *testing.T) {
	tr := keepAll("origin")
	for i := 0; i < 3; i++ {
		ctx := NewContext(context.Background(), tr)
		ctx, root := Start(ctx, "refresh")
		_, st := Start(ctx, "refresh.sanitize")
		st.End()
		root.End()
	}
	stages := tr.Store().Stages()
	if stages["refresh"].Count != 3 || stages["refresh.sanitize"].Count != 3 {
		t.Fatalf("stage counts = %+v, want 3 each", stages)
	}
}

func TestConcurrentTracesRaceClean(t *testing.T) {
	tr := NewTracer(Config{Tier: "t", Capacity: 32, HeadEvery: 2})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				ctx := NewContext(context.Background(), tr)
				ctx, root := Start(ctx, "op")
				_, child := Start(ctx, "child")
				child.SetAttrInt("i", int64(i))
				child.End()
				root.End()
			}
		}()
	}
	wg.Wait()
	st := tr.Store().Stats()
	if st.Kept+st.SampledOut != 400 {
		t.Fatalf("kept %d + sampled-out %d != 400", st.Kept, st.SampledOut)
	}
}
