// Package trace is a dependency-free span/trace layer for the tsr
// serving tiers. A trace is a tree of spans sharing one trace ID; spans
// are carried in a context.Context and propagated across process (and
// tier) boundaries via the X-Tsr-Trace-Id / X-Tsr-Span-Id request
// headers, so one trace stitches client → edge → (chained edge) →
// origin. Coalesced followers (flight.Group waiters) do not fabricate
// an upstream call; they record a coalesced=true link to the leader's
// span instead.
//
// The hot path is deliberately cheap: starting a span is two PRNG
// draws and a small allocation, attributes append to a private slice,
// and no lock shared between requests is taken until a trace is
// *kept*. The keep decision happens once, when the root span ends:
// errored, shed, and slow (per-route p99-exceeding, via a pluggable
// predicate) traces are always kept; the rest are head-sampled by a
// deterministic hash of the trace ID, so every tier of a chain makes
// the same decision without a sampling flag on the wire.
package trace

import (
	"context"
	"fmt"
	"hash/fnv"
	"math/rand/v2"
	"net/http"
	"sync"
	"time"
)

// Wire format: trace and span IDs travel as lowercase hex in these
// request headers. The response also carries them (set by obs.Wrap),
// so a client can look up its own trace at /debug/traces/{id}.
const (
	HeaderTraceID = "X-Tsr-Trace-Id"
	HeaderSpanID  = "X-Tsr-Span-Id"

	traceIDLen = 32 // 16 bytes, hex
	spanIDLen  = 16 // 8 bytes, hex
)

// maxSpansPerTrace bounds one trace's span count; beyond it new child
// spans are dropped (and counted), so a pathological request cannot
// balloon memory.
const maxSpansPerTrace = 64

// Keep reasons recorded on stored traces.
const (
	KeepError = "error"
	KeepShed  = "shed"
	KeepSlow  = "slow"
	KeepHead  = "head"
)

// Config configures a Tracer.
type Config struct {
	// Tier labels every span this tracer roots ("origin", "edge",
	// "client", ...); child spans inherit it unless overridden with
	// SetTier.
	Tier string
	// Capacity bounds the trace store (default 512 traces, FIFO).
	Capacity int
	// HeadEvery keeps 1-in-N of the traces that no always-keep rule
	// claims (default 16; values <= 1 keep everything).
	HeadEvery int
}

// Tracer owns the sampling policy and the bounded store. One per
// daemon; safe for concurrent use.
type Tracer struct {
	tier      string
	headEvery uint64
	store     *Store

	mu   sync.RWMutex
	slow func(root string, d time.Duration) bool
}

// NewTracer builds a Tracer with its own bounded store.
func NewTracer(cfg Config) *Tracer {
	cap := cfg.Capacity
	if cap <= 0 {
		cap = 512
	}
	every := cfg.HeadEvery
	if every <= 0 {
		every = 16
	}
	return &Tracer{
		tier:      cfg.Tier,
		headEvery: uint64(every),
		store:     newStore(cap),
	}
}

// Tier returns the tier label this tracer stamps on root spans.
func (t *Tracer) Tier() string { return t.tier }

// Store returns the tracer's bounded trace store.
func (t *Tracer) Store() *Store { return t.store }

// SetSlow installs the always-keep predicate for slow traces. The obs
// layer wires this to its per-route p99 so "slow" tracks the live
// latency distribution rather than a fixed threshold.
func (t *Tracer) SetSlow(fn func(root string, d time.Duration) bool) {
	t.mu.Lock()
	t.slow = fn
	t.mu.Unlock()
}

func (t *Tracer) isSlow(root string, d time.Duration) bool {
	t.mu.RLock()
	fn := t.slow
	t.mu.RUnlock()
	return fn != nil && fn(root, d)
}

// context keys.
type (
	tracerKey struct{}
	spanKey   struct{}
	remoteKey struct{}
)

// remoteParent is an extracted upstream trace/span identity.
type remoteParent struct {
	traceID string
	spanID  string
}

// NewContext returns ctx carrying the tracer: the next Start on a
// descendant context roots a new trace.
func NewContext(ctx context.Context, t *Tracer) context.Context {
	if t == nil {
		return ctx
	}
	return context.WithValue(ctx, tracerKey{}, t)
}

// FromContext returns the tracer carried by ctx, or nil.
func FromContext(ctx context.Context) *Tracer {
	if ctx == nil {
		return nil
	}
	t, _ := ctx.Value(tracerKey{}).(*Tracer)
	return t
}

// SpanFromContext returns the span carried by ctx, or nil.
func SpanFromContext(ctx context.Context) *Span {
	if ctx == nil {
		return nil
	}
	sp, _ := ctx.Value(spanKey{}).(*Span)
	return sp
}

// WithRemote records an upstream parent (extracted from request
// headers) on ctx: the next root span joins that trace instead of
// starting a fresh one. Invalid IDs are ignored by Extract, so rm is
// always well-formed here.
func WithRemote(ctx context.Context, traceID, spanID string) context.Context {
	if !ValidTraceID(traceID) || !ValidSpanID(spanID) {
		return ctx
	}
	return context.WithValue(ctx, remoteKey{}, remoteParent{traceID: traceID, spanID: spanID})
}

// Start begins a span named name. If ctx already carries a span the
// new span is its child; otherwise, if ctx carries a Tracer, it roots
// a new trace (joining a remote parent recorded by WithRemote, if
// any). With neither, Start returns (ctx, nil) and every method on the
// nil span is a no-op — untraced paths cost one context lookup.
//
// The caller must End the returned span on every path (the spanend
// lint enforces this); ending the root span flushes the trace through
// the sampler into the store.
func Start(ctx context.Context, name string) (context.Context, *Span) {
	if ctx == nil {
		return ctx, nil
	}
	if parent := SpanFromContext(ctx); parent != nil {
		sp := parent.rec.newSpan(name, parent.spanID, parent.tier, false)
		if sp == nil {
			return ctx, nil
		}
		return context.WithValue(ctx, spanKey{}, sp), sp
	}
	t := FromContext(ctx)
	if t == nil {
		return ctx, nil
	}
	r := &rec{tracer: t}
	parentID := ""
	if rm, ok := ctx.Value(remoteKey{}).(remoteParent); ok {
		r.traceID = rm.traceID
		r.remote = true
		parentID = rm.spanID
	} else {
		r.traceID = newTraceID()
	}
	sp := r.newSpan(name, parentID, t.tier, true)
	return context.WithValue(ctx, spanKey{}, sp), sp
}

// rec is the shared per-trace record: every span of one local trace
// tree points at it. Its mutex is private to the trace, so concurrent
// requests never contend on it.
type rec struct {
	tracer  *Tracer
	traceID string
	remote  bool

	mu      sync.Mutex
	spans   []*Span
	dropped int
	flagged bool // any span errored
	shed    bool // any span shed
}

func (r *rec) newSpan(name, parentID, tier string, root bool) *Span {
	sp := &Span{
		rec:      r,
		name:     name,
		tier:     tier,
		spanID:   newSpanID(),
		parentID: parentID,
		start:    time.Now(),
		root:     root,
	}
	r.mu.Lock()
	if len(r.spans) >= maxSpansPerTrace {
		r.dropped++
		r.mu.Unlock()
		return nil
	}
	r.spans = append(r.spans, sp)
	r.mu.Unlock()
	return sp
}

// Span is one timed operation in a trace. All methods are safe on a
// nil receiver, so callers never guard instrumentation with nil
// checks.
type Span struct {
	rec      *rec
	name     string
	spanID   string
	parentID string
	start    time.Time
	root     bool

	mu     sync.Mutex
	tier   string
	attrs  []Attr
	errMsg string
	shed   bool
	link   *Link
	end    time.Time
	ended  bool
}

// TraceID returns the span's trace ID ("" on nil).
func (s *Span) TraceID() string {
	if s == nil {
		return ""
	}
	return s.rec.traceID
}

// SpanID returns the span's ID ("" on nil).
func (s *Span) SpanID() string {
	if s == nil {
		return ""
	}
	return s.spanID
}

// SetTier overrides the tier label ("origin", "edge", "client").
func (s *Span) SetTier(tier string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.tier = tier
	s.mu.Unlock()
}

// SetAttr attaches a key/value attribute.
func (s *Span) SetAttr(key, value string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.attrs = append(s.attrs, Attr{Key: key, Value: value})
	s.mu.Unlock()
}

// SetAttrInt attaches an integer attribute.
func (s *Span) SetAttrInt(key string, value int64) {
	s.SetAttr(key, fmt.Sprintf("%d", value))
}

// SetError records err on the span and flags the whole trace for
// always-keep. A nil err is a no-op.
func (s *Span) SetError(err error) {
	if s == nil || err == nil {
		return
	}
	s.mu.Lock()
	s.errMsg = err.Error()
	s.mu.Unlock()
	s.rec.mu.Lock()
	s.rec.flagged = true
	s.rec.mu.Unlock()
}

// MarkShed records that admission control shed this request; shed
// traces are always kept.
func (s *Span) MarkShed() {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.shed = true
	s.mu.Unlock()
	s.rec.mu.Lock()
	s.rec.shed = true
	s.rec.mu.Unlock()
}

// SetHTTPStatus records the response status; 5xx also flags the trace
// for always-keep.
func (s *Span) SetHTTPStatus(code int) {
	if s == nil {
		return
	}
	s.SetAttrInt("http.status", int64(code))
	if code >= 500 {
		s.mu.Lock()
		if s.errMsg == "" {
			s.errMsg = fmt.Sprintf("http status %d", code)
		}
		s.mu.Unlock()
		s.rec.mu.Lock()
		s.rec.flagged = true
		s.rec.mu.Unlock()
	}
}

// LinkCoalesced records that this span's work was served by leader's
// flight instead of an upstream call of its own. No-op when either
// side is untraced.
func (s *Span) LinkCoalesced(leader *Span) {
	if s == nil || leader == nil {
		return
	}
	link := &Link{TraceID: leader.rec.traceID, SpanID: leader.spanID, Coalesced: true}
	s.mu.Lock()
	s.link = link
	s.mu.Unlock()
}

// End finishes the span. Ending the root span runs the sampler and, if
// the trace is kept, flushes it into the store. End is idempotent.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.ended {
		s.mu.Unlock()
		return
	}
	s.ended = true
	s.end = time.Now()
	s.mu.Unlock()
	if s.root {
		s.rec.flush(s)
	}
}

// flush decides keep-or-drop for the finished trace and offers it to
// the store. Runs once, on the root's goroutine.
func (r *rec) flush(root *Span) {
	d := root.end.Sub(root.start)
	r.mu.Lock()
	flagged, shed := r.flagged, r.shed
	spans := make([]*Span, len(r.spans))
	copy(spans, r.spans)
	dropped := r.dropped
	r.mu.Unlock()

	t := r.tracer
	var reason string
	switch {
	case shed:
		reason = KeepShed
	case flagged:
		reason = KeepError
	case t.isSlow(root.name, d):
		reason = KeepSlow
	case headKeep(r.traceID, t.headEvery):
		reason = KeepHead
	default:
		t.store.noteSampledOut()
		return
	}

	td := &TraceData{
		TraceID:    r.traceID,
		Root:       root.name,
		Reason:     reason,
		Start:      root.start,
		DurationMs: float64(d) / float64(time.Millisecond),
		Dropped:    dropped,
		Spans:      make([]SpanData, 0, len(spans)),
	}
	for _, sp := range spans {
		td.Spans = append(td.Spans, sp.data())
	}
	t.store.offer(td)
}

// data snapshots the span for storage.
func (s *Span) data() SpanData {
	s.mu.Lock()
	defer s.mu.Unlock()
	sd := SpanData{
		TraceID:  s.rec.traceID,
		SpanID:   s.spanID,
		ParentID: s.parentID,
		Name:     s.name,
		Tier:     s.tier,
		Start:    s.start,
		Error:    s.errMsg,
		Shed:     s.shed,
		Link:     s.link,
	}
	if s.ended {
		sd.DurationMs = float64(s.end.Sub(s.start)) / float64(time.Millisecond)
	} else {
		sd.Unfinished = true
	}
	if len(s.attrs) > 0 {
		sd.Attrs = append([]Attr(nil), s.attrs...)
	}
	return sd
}

// headKeep is the deterministic head-sampling decision: a hash of the
// trace ID, so every tier of a stitched trace keeps or drops together.
func headKeep(traceID string, every uint64) bool {
	if every <= 1 {
		return true
	}
	h := fnv.New64a()
	_, _ = h.Write([]byte(traceID))
	return h.Sum64()%every == 0
}

// Inject writes the current span's identity into outbound request
// headers. No-op on an untraced context.
func Inject(ctx context.Context, h http.Header) {
	sp := SpanFromContext(ctx)
	if sp == nil {
		return
	}
	h.Set(HeaderTraceID, sp.rec.traceID)
	h.Set(HeaderSpanID, sp.spanID)
}

// Extract reads and validates a trace identity from inbound request
// headers. Malformed or absent headers return ok=false; the server
// then roots a fresh trace rather than propagating garbage.
func Extract(h http.Header) (traceID, spanID string, ok bool) {
	t, s := h.Get(HeaderTraceID), h.Get(HeaderSpanID)
	if !ValidTraceID(t) || !ValidSpanID(s) {
		return "", "", false
	}
	return t, s, true
}

// ValidTraceID reports whether s is a well-formed trace ID: exactly 32
// lowercase hex characters.
func ValidTraceID(s string) bool { return validHex(s, traceIDLen) }

// ValidSpanID reports whether s is a well-formed span ID: exactly 16
// lowercase hex characters.
func ValidSpanID(s string) bool { return validHex(s, spanIDLen) }

func validHex(s string, n int) bool {
	if len(s) != n {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

const hexDigits = "0123456789abcdef"

// newTraceID / newSpanID draw from the shared math/rand/v2 generator:
// IDs are correlation handles, not secrets, and the goroutine-sharded
// global PRNG keeps span start off the syscall path — the reason
// tracing stays affordable on microsecond-scale snapshot reads.
func newTraceID() string {
	var b [traceIDLen]byte
	putHex64(b[:16], rand.Uint64())
	putHex64(b[16:], rand.Uint64())
	return string(b[:])
}

func newSpanID() string {
	var b [spanIDLen]byte
	putHex64(b[:], rand.Uint64())
	return string(b[:])
}

func putHex64(dst []byte, v uint64) {
	for i := 15; i >= 0; i-- {
		dst[i] = hexDigits[v&0xf]
		v >>= 4
	}
}
