package apk

import (
	"errors"
	"fmt"

	"tsr/internal/keys"
)

// ErrUntrusted is returned when no trusted key vouches for a package.
var ErrUntrusted = errors.New("apk: package not signed by a trusted key")

// Sign issues a signature over the package's control segment with the
// given key and records it in the signature segment, replacing any
// existing signature by the same key name.
func Sign(p *Package, pair *keys.Pair) error {
	control, err := p.ControlBytes()
	if err != nil {
		return err
	}
	sig, err := pair.Sign(control)
	if err != nil {
		return err
	}
	if p.Signatures == nil {
		p.Signatures = make(map[string][]byte)
	}
	p.Signatures[pair.Name] = sig
	return nil
}

// VerifyRaw checks that an encoded package carries a signature by a ring
// key over its exact control segment bytes, then fully decodes it (which
// also verifies the data-segment hash). It returns the package and the
// name of the key that verified it.
//
// This is the check both the package manager (§2.2, "verifies that a
// trusted entity created the package") and TSR's sanitizer perform.
func VerifyRaw(raw []byte, ring *keys.Ring) (*Package, string, error) {
	control, err := RawControlSegment(raw)
	if err != nil {
		return nil, "", err
	}
	p, err := Decode(raw)
	if err != nil {
		return nil, "", err
	}
	for name, sig := range p.Signatures {
		if err := ring.VerifyBy(name, control, sig); err == nil {
			return p, name, nil
		}
	}
	return nil, "", fmt.Errorf("%w: %s-%s (have %d signatures, %d trusted keys)",
		ErrUntrusted, p.Name, p.Version, len(p.Signatures), ring.Len())
}
