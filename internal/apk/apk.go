// Package apk implements the Alpine-style package format the paper
// targets (Figure 3): an archive of three concatenated gzip streams —
//
//	signature segment: ".SIGN.RSA.<key name>" files holding digital
//	  signatures issued over the raw control segment,
//	control segment: ".PKGINFO" (name, version, dependencies, and the
//	  hash of the data segment) plus installation scripts,
//	data segment: the package files, with extended attributes (such as
//	  the per-file IMA signatures TSR injects) carried in PAX headers,
//	  exactly as §5.3 describes.
//
// Both segments are tar archives. The control segment's exact bytes are
// what the signature covers, so Decode keeps them available for
// verification and Encode is deterministic.
package apk

import (
	"archive/tar"
	"bytes"
	"compress/gzip"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"io"
	"sort"
	"strings"
	"time"
)

// Signature and segment naming conventions.
const (
	// SignaturePrefix prefixes signature member names in the signature
	// segment, followed by the signing key name.
	SignaturePrefix = ".SIGN.RSA."
	// ControlName is the metadata member inside the control segment.
	ControlName = ".PKGINFO"
	// XattrIMA is the PAX/xattr key carrying a file's IMA signature
	// (EVM portable signature in real systems).
	XattrIMA = "security.ima"
	// paxXattrPrefix is the PAX record prefix GNU/star use for xattrs.
	paxXattrPrefix = "SCHILY.xattr."
)

// Error sentinels.
var (
	ErrFormat      = errors.New("apk: malformed package")
	ErrContentHash = errors.New("apk: data segment hash mismatch")
)

// File is one entry of the data segment.
type File struct {
	// Path is absolute inside the target filesystem ("/usr/bin/x").
	Path string
	// Mode holds the permission bits.
	Mode uint32
	// Content is the file payload.
	Content []byte
	// Xattrs carries extended attributes (PAX records on the wire).
	Xattrs map[string][]byte
}

// Package is a parsed (or to-be-encoded) software package.
type Package struct {
	// Name, Version and Arch identify the package.
	Name    string
	Version string
	Arch    string
	// Depends lists package names this package requires.
	Depends []string
	// Scripts maps hook names ("pre-install", "post-install",
	// "pre-upgrade", "post-upgrade") to script source text.
	Scripts map[string]string
	// Files is the data segment contents.
	Files []File
	// Signatures maps signing key names to signatures over the raw
	// control segment.
	Signatures map[string][]byte
}

// Clone returns a deep copy, used by the sanitizer which rewrites the
// package without mutating the original.
func (p *Package) Clone() *Package {
	cp := &Package{
		Name:    p.Name,
		Version: p.Version,
		Arch:    p.Arch,
		Depends: append([]string(nil), p.Depends...),
	}
	if p.Scripts != nil {
		cp.Scripts = make(map[string]string, len(p.Scripts))
		for k, v := range p.Scripts {
			cp.Scripts[k] = v
		}
	}
	if p.Signatures != nil {
		cp.Signatures = make(map[string][]byte, len(p.Signatures))
		for k, v := range p.Signatures {
			cp.Signatures[k] = append([]byte(nil), v...)
		}
	}
	cp.Files = make([]File, len(p.Files))
	for i, f := range p.Files {
		nf := File{Path: f.Path, Mode: f.Mode, Content: append([]byte(nil), f.Content...)}
		if f.Xattrs != nil {
			nf.Xattrs = make(map[string][]byte, len(f.Xattrs))
			for k, v := range f.Xattrs {
				nf.Xattrs[k] = append([]byte(nil), v...)
			}
		}
		cp.Files[i] = nf
	}
	return cp
}

// ScriptNames returns the script hook names in sorted order.
func (p *Package) ScriptNames() []string {
	names := make([]string, 0, len(p.Scripts))
	for n := range p.Scripts {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// FileCount returns the number of files in the data segment.
func (p *Package) FileCount() int { return len(p.Files) }

// UncompressedSize returns the total content size of the data segment,
// the "uncompressed package size" axis of Figure 8.
func (p *Package) UncompressedSize() int64 {
	var n int64
	for _, f := range p.Files {
		n += int64(len(f.Content))
	}
	return n
}

// DataHash computes the SHA-256 of the encoded data segment; this is the
// "hash of the package contents" stored in the control segment.
func (p *Package) DataHash() ([32]byte, error) {
	data, err := encodeDataSegment(p.Files)
	if err != nil {
		return [32]byte{}, err
	}
	return sha256.Sum256(data), nil
}

// ControlBytes renders the control segment exactly as Encode embeds it;
// signatures are issued over these bytes.
func (p *Package) ControlBytes() ([]byte, error) {
	hash, err := p.DataHash()
	if err != nil {
		return nil, err
	}
	return encodeControlSegment(p, hash)
}

// Encode serializes the package to its on-wire form.
func Encode(p *Package) ([]byte, error) {
	control, err := p.ControlBytes()
	if err != nil {
		return nil, err
	}
	sigSeg, err := encodeSignatureSegment(p.Signatures)
	if err != nil {
		return nil, err
	}
	dataSeg, err := encodeDataSegment(p.Files)
	if err != nil {
		return nil, err
	}
	var out bytes.Buffer
	for _, seg := range [][]byte{sigSeg, control, dataSeg} {
		gz := gzip.NewWriter(&out)
		if _, err := gz.Write(seg); err != nil {
			return nil, fmt.Errorf("apk: compressing segment: %w", err)
		}
		if err := gz.Close(); err != nil {
			return nil, fmt.Errorf("apk: compressing segment: %w", err)
		}
	}
	return out.Bytes(), nil
}

// Decode parses an encoded package, verifying the control segment's
// content hash against the data segment.
func Decode(raw []byte) (*Package, error) {
	segs, err := splitGzipMembers(raw, 3)
	if err != nil {
		return nil, err
	}
	p := &Package{}
	if err := decodeSignatureSegment(segs[0], p); err != nil {
		return nil, err
	}
	declaredHash, err := decodeControlSegment(segs[1], p)
	if err != nil {
		return nil, err
	}
	if err := decodeDataSegment(segs[2], p); err != nil {
		return nil, err
	}
	actual := sha256.Sum256(segs[2])
	if actual != declaredHash {
		return nil, fmt.Errorf("%w: declared %x, actual %x", ErrContentHash, declaredHash[:8], actual[:8])
	}
	return p, nil
}

// RawControlSegment extracts the exact control segment bytes from an
// encoded package, for signature verification without a full decode.
// Only the signature and control members are decompressed — the (much
// larger) data segment is not touched, so the integrity check costs
// roughly the same regardless of package size.
func RawControlSegment(raw []byte) ([]byte, error) {
	segs, err := splitGzipPrefix(raw, 2)
	if err != nil {
		return nil, err
	}
	return segs[1], nil
}

// splitGzipMembers decompresses exactly n concatenated gzip members and
// requires the input to end after them.
func splitGzipMembers(raw []byte, n int) ([][]byte, error) {
	segs, r, err := splitMembers(raw, n)
	if err != nil {
		return nil, err
	}
	if r.Len() != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrFormat, r.Len())
	}
	return segs, nil
}

// splitGzipPrefix decompresses the first n members, ignoring the rest.
func splitGzipPrefix(raw []byte, n int) ([][]byte, error) {
	segs, _, err := splitMembers(raw, n)
	return segs, err
}

func splitMembers(raw []byte, n int) ([][]byte, *bytes.Reader, error) {
	r := bytes.NewReader(raw)
	gz, err := gzip.NewReader(r)
	if err != nil {
		return nil, nil, fmt.Errorf("%w: %v", ErrFormat, err)
	}
	gz.Multistream(false)
	var segs [][]byte
	for i := 0; i < n; i++ {
		var buf bytes.Buffer
		if _, err := io.Copy(&buf, gz); err != nil {
			return nil, nil, fmt.Errorf("%w: segment %d: %v", ErrFormat, i, err)
		}
		segs = append(segs, buf.Bytes())
		if i == n-1 {
			break
		}
		if err := gz.Reset(r); err != nil {
			if err == io.EOF {
				return nil, nil, fmt.Errorf("%w: only %d of %d segments", ErrFormat, i+1, n)
			}
			return nil, nil, fmt.Errorf("%w: segment %d: %v", ErrFormat, i+1, err)
		}
		gz.Multistream(false)
	}
	return segs, r, nil
}

// tarEpoch is the fixed timestamp used for all archive members, keeping
// encoding deterministic (same package bytes in, same bytes out).
var tarEpoch = time.Unix(0, 0)

func encodeSignatureSegment(sigs map[string][]byte) ([]byte, error) {
	var buf bytes.Buffer
	tw := tar.NewWriter(&buf)
	names := make([]string, 0, len(sigs))
	for name := range sigs {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		sig := sigs[name]
		hdr := &tar.Header{
			Name:    SignaturePrefix + name,
			Mode:    0o644,
			Size:    int64(len(sig)),
			ModTime: tarEpoch,
			Format:  tar.FormatPAX,
		}
		if err := tw.WriteHeader(hdr); err != nil {
			return nil, fmt.Errorf("apk: signature segment: %w", err)
		}
		if _, err := tw.Write(sig); err != nil {
			return nil, fmt.Errorf("apk: signature segment: %w", err)
		}
	}
	if err := tw.Close(); err != nil {
		return nil, fmt.Errorf("apk: signature segment: %w", err)
	}
	return buf.Bytes(), nil
}

func decodeSignatureSegment(seg []byte, p *Package) error {
	tr := tar.NewReader(bytes.NewReader(seg))
	for {
		hdr, err := tr.Next()
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return fmt.Errorf("%w: signature segment: %v", ErrFormat, err)
		}
		if !strings.HasPrefix(hdr.Name, SignaturePrefix) {
			return fmt.Errorf("%w: unexpected signature member %q", ErrFormat, hdr.Name)
		}
		sig, err := io.ReadAll(tr)
		if err != nil {
			return fmt.Errorf("%w: signature segment: %v", ErrFormat, err)
		}
		if p.Signatures == nil {
			p.Signatures = make(map[string][]byte)
		}
		p.Signatures[strings.TrimPrefix(hdr.Name, SignaturePrefix)] = sig
	}
}

// encodeControlSegment renders .PKGINFO and the script members.
func encodeControlSegment(p *Package, dataHash [32]byte) ([]byte, error) {
	var info bytes.Buffer
	fmt.Fprintf(&info, "pkgname = %s\n", p.Name)
	fmt.Fprintf(&info, "pkgver = %s\n", p.Version)
	if p.Arch != "" {
		fmt.Fprintf(&info, "arch = %s\n", p.Arch)
	}
	deps := append([]string(nil), p.Depends...)
	sort.Strings(deps)
	for _, d := range deps {
		fmt.Fprintf(&info, "depend = %s\n", d)
	}
	fmt.Fprintf(&info, "datahash = %x\n", dataHash)

	var buf bytes.Buffer
	tw := tar.NewWriter(&buf)
	write := func(name string, content []byte) error {
		hdr := &tar.Header{
			Name:    name,
			Mode:    0o644,
			Size:    int64(len(content)),
			ModTime: tarEpoch,
			Format:  tar.FormatPAX,
		}
		if err := tw.WriteHeader(hdr); err != nil {
			return err
		}
		_, err := tw.Write(content)
		return err
	}
	if err := write(ControlName, info.Bytes()); err != nil {
		return nil, fmt.Errorf("apk: control segment: %w", err)
	}
	for _, name := range p.ScriptNames() {
		if err := write("."+name, []byte(p.Scripts[name])); err != nil {
			return nil, fmt.Errorf("apk: control segment: %w", err)
		}
	}
	if err := tw.Close(); err != nil {
		return nil, fmt.Errorf("apk: control segment: %w", err)
	}
	return buf.Bytes(), nil
}

func decodeControlSegment(seg []byte, p *Package) ([32]byte, error) {
	var dataHash [32]byte
	seenInfo := false
	tr := tar.NewReader(bytes.NewReader(seg))
	for {
		hdr, err := tr.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return dataHash, fmt.Errorf("%w: control segment: %v", ErrFormat, err)
		}
		content, err := io.ReadAll(tr)
		if err != nil {
			return dataHash, fmt.Errorf("%w: control segment: %v", ErrFormat, err)
		}
		if hdr.Name == ControlName {
			seenInfo = true
			if err := parsePkgInfo(content, p, &dataHash); err != nil {
				return dataHash, err
			}
			continue
		}
		if !strings.HasPrefix(hdr.Name, ".") {
			return dataHash, fmt.Errorf("%w: unexpected control member %q", ErrFormat, hdr.Name)
		}
		if p.Scripts == nil {
			p.Scripts = make(map[string]string)
		}
		p.Scripts[strings.TrimPrefix(hdr.Name, ".")] = string(content)
	}
	if !seenInfo {
		return dataHash, fmt.Errorf("%w: missing %s", ErrFormat, ControlName)
	}
	return dataHash, nil
}

func parsePkgInfo(content []byte, p *Package, dataHash *[32]byte) error {
	for _, line := range strings.Split(string(content), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		key, value, ok := strings.Cut(line, " = ")
		if !ok {
			return fmt.Errorf("%w: bad PKGINFO line %q", ErrFormat, line)
		}
		switch key {
		case "pkgname":
			p.Name = value
		case "pkgver":
			p.Version = value
		case "arch":
			p.Arch = value
		case "depend":
			p.Depends = append(p.Depends, value)
		case "datahash":
			decoded, err := hex.DecodeString(value)
			if err != nil || len(decoded) != 32 {
				return fmt.Errorf("%w: bad datahash %q", ErrFormat, value)
			}
			copy(dataHash[:], decoded)
		default:
			return fmt.Errorf("%w: unknown PKGINFO key %q", ErrFormat, key)
		}
	}
	if p.Name == "" || p.Version == "" {
		return fmt.Errorf("%w: PKGINFO missing pkgname/pkgver", ErrFormat)
	}
	return nil
}

func encodeDataSegment(files []File) ([]byte, error) {
	var buf bytes.Buffer
	tw := tar.NewWriter(&buf)
	sorted := append([]File(nil), files...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Path < sorted[j].Path })
	for _, f := range sorted {
		if !strings.HasPrefix(f.Path, "/") {
			return nil, fmt.Errorf("%w: file path %q not absolute", ErrFormat, f.Path)
		}
		hdr := &tar.Header{
			Name:    strings.TrimPrefix(f.Path, "/"),
			Mode:    int64(f.Mode),
			Size:    int64(len(f.Content)),
			ModTime: tarEpoch,
			Format:  tar.FormatPAX,
		}
		if len(f.Xattrs) > 0 {
			hdr.PAXRecords = make(map[string]string, len(f.Xattrs))
			for k, v := range f.Xattrs {
				hdr.PAXRecords[paxXattrPrefix+k] = string(v)
			}
		}
		if err := tw.WriteHeader(hdr); err != nil {
			return nil, fmt.Errorf("apk: data segment: %w", err)
		}
		if _, err := tw.Write(f.Content); err != nil {
			return nil, fmt.Errorf("apk: data segment: %w", err)
		}
	}
	if err := tw.Close(); err != nil {
		return nil, fmt.Errorf("apk: data segment: %w", err)
	}
	return buf.Bytes(), nil
}

func decodeDataSegment(seg []byte, p *Package) error {
	tr := tar.NewReader(bytes.NewReader(seg))
	for {
		hdr, err := tr.Next()
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return fmt.Errorf("%w: data segment: %v", ErrFormat, err)
		}
		content, err := io.ReadAll(tr)
		if err != nil {
			return fmt.Errorf("%w: data segment: %v", ErrFormat, err)
		}
		f := File{
			Path:    "/" + hdr.Name,
			Mode:    uint32(hdr.Mode),
			Content: content,
		}
		for k, v := range hdr.PAXRecords {
			if strings.HasPrefix(k, paxXattrPrefix) {
				if f.Xattrs == nil {
					f.Xattrs = make(map[string][]byte)
				}
				f.Xattrs[strings.TrimPrefix(k, paxXattrPrefix)] = []byte(v)
			}
		}
		p.Files = append(p.Files, f)
	}
}
