package apk

import (
	"bytes"
	"compress/gzip"
	"errors"
	"fmt"
	"io"
	"reflect"
	"testing"
	"testing/quick"

	"tsr/internal/keys"
)

func gzipWriter(w io.Writer) *gzip.Writer { return gzip.NewWriter(w) }

func samplePackage() *Package {
	return &Package{
		Name:    "ntpd",
		Version: "4.2.8-r0",
		Arch:    "x86_64",
		Depends: []string{"musl", "openssl"},
		Scripts: map[string]string{
			"post-install": "addgroup -S ntp\nadduser -S -G ntp ntp\n",
		},
		Files: []File{
			{Path: "/usr/sbin/ntpd", Mode: 0o755, Content: []byte("ELF...")},
			{Path: "/etc/ntp.conf", Mode: 0o644, Content: []byte("server pool.ntp.org\n"),
				Xattrs: map[string][]byte{XattrIMA: {0xAA, 0xBB}}},
		},
	}
}

func TestEncodeDecodeRoundtrip(t *testing.T) {
	p := samplePackage()
	raw, err := Encode(p)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(raw)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != p.Name || got.Version != p.Version || got.Arch != p.Arch {
		t.Fatalf("identity = %s-%s %s", got.Name, got.Version, got.Arch)
	}
	if !reflect.DeepEqual(got.Depends, p.Depends) {
		t.Fatalf("depends = %v", got.Depends)
	}
	if got.Scripts["post-install"] != p.Scripts["post-install"] {
		t.Fatalf("script = %q", got.Scripts["post-install"])
	}
	if len(got.Files) != 2 {
		t.Fatalf("files = %d", len(got.Files))
	}
	// Files come back sorted by path.
	if got.Files[0].Path != "/etc/ntp.conf" || got.Files[1].Path != "/usr/sbin/ntpd" {
		t.Fatalf("paths = %v, %v", got.Files[0].Path, got.Files[1].Path)
	}
	if !bytes.Equal(got.Files[0].Xattrs[XattrIMA], []byte{0xAA, 0xBB}) {
		t.Fatalf("xattr lost: %v", got.Files[0].Xattrs)
	}
	if got.Files[1].Mode != 0o755 {
		t.Fatalf("mode = %o", got.Files[1].Mode)
	}
}

func TestEncodeDeterministic(t *testing.T) {
	p := samplePackage()
	a, err := Encode(p)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Encode(p)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatal("Encode is not deterministic")
	}
}

func TestDecodeRejectsTamperedData(t *testing.T) {
	p := samplePackage()
	raw, err := Encode(p)
	if err != nil {
		t.Fatal(err)
	}
	// Re-encode with modified file content but stale declared hash:
	// simulate by flipping a byte inside the last gzip member's payload.
	// Easier path: build a package whose control says one hash while the
	// data segment differs. Construct manually.
	segs := rawSegments(t, raw)
	// Tamper: replace the data segment with that of another package.
	other := samplePackage()
	other.Files[0].Content = []byte("TAMPERED")
	otherRaw, err := Encode(other)
	if err != nil {
		t.Fatal(err)
	}
	otherSegs := rawSegments(t, otherRaw)
	tampered := rebuild(t, segs[0], segs[1], otherSegs[2])
	if _, err := Decode(tampered); !errors.Is(err, ErrContentHash) {
		t.Fatalf("err = %v, want ErrContentHash", err)
	}
}

// rawSegments splits an encoded package into its three uncompressed
// segments via the package's own splitter (tested separately below).
func rawSegments(t *testing.T, raw []byte) [][]byte {
	t.Helper()
	segs, err := splitGzipMembers(raw, 3)
	if err != nil {
		t.Fatal(err)
	}
	return segs
}

// rebuild re-gzips three segments into package wire format.
func rebuild(t *testing.T, segs ...[]byte) []byte {
	t.Helper()
	var out bytes.Buffer
	for _, seg := range segs {
		gz := gzipWriter(&out)
		if _, err := gz.Write(seg); err != nil {
			t.Fatal(err)
		}
		if err := gz.Close(); err != nil {
			t.Fatal(err)
		}
	}
	return out.Bytes()
}

func TestDecodeErrors(t *testing.T) {
	if _, err := Decode([]byte("not gzip")); !errors.Is(err, ErrFormat) {
		t.Fatalf("garbage: err = %v", err)
	}
	// Too few segments.
	var one bytes.Buffer
	gz := gzipWriter(&one)
	gz.Write([]byte("x"))
	gz.Close()
	if _, err := Decode(one.Bytes()); !errors.Is(err, ErrFormat) {
		t.Fatalf("one segment: err = %v", err)
	}
	// Trailing garbage after three segments.
	p := samplePackage()
	raw, err := Encode(p)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Decode(append(raw, 0xFF)); !errors.Is(err, ErrFormat) {
		t.Fatalf("trailing bytes: err = %v", err)
	}
}

func TestSignVerify(t *testing.T) {
	signer := keys.Shared.MustGet("alpine@alpinelinux.org-4a40")
	p := samplePackage()
	if err := Sign(p, signer); err != nil {
		t.Fatal(err)
	}
	raw, err := Encode(p)
	if err != nil {
		t.Fatal(err)
	}
	ring := keys.NewRing(signer.Public())
	got, keyName, err := VerifyRaw(raw, ring)
	if err != nil {
		t.Fatal(err)
	}
	if keyName != signer.Name || got.Name != "ntpd" {
		t.Fatalf("verified as %q, pkg %q", keyName, got.Name)
	}
}

func TestVerifyRejectsUntrustedSigner(t *testing.T) {
	evil := keys.Shared.MustGet("evil-signer")
	good := keys.Shared.MustGet("alpine@alpinelinux.org-4a40")
	p := samplePackage()
	if err := Sign(p, evil); err != nil {
		t.Fatal(err)
	}
	raw, err := Encode(p)
	if err != nil {
		t.Fatal(err)
	}
	ring := keys.NewRing(good.Public())
	if _, _, err := VerifyRaw(raw, ring); !errors.Is(err, ErrUntrusted) {
		t.Fatalf("err = %v", err)
	}
}

func TestVerifyRejectsModifiedScript(t *testing.T) {
	signer := keys.Shared.MustGet("alpine@alpinelinux.org-4a40")
	p := samplePackage()
	if err := Sign(p, signer); err != nil {
		t.Fatal(err)
	}
	// An adversary modifies the installation script after signing: the
	// control segment changes, so the signature no longer matches.
	p.Scripts["post-install"] = "adduser -s /bin/sh -u 0 backdoor\n"
	raw, err := Encode(p)
	if err != nil {
		t.Fatal(err)
	}
	ring := keys.NewRing(signer.Public())
	if _, _, err := VerifyRaw(raw, ring); !errors.Is(err, ErrUntrusted) {
		t.Fatalf("err = %v", err)
	}
}

func TestSignatureSurvivesReencode(t *testing.T) {
	// Re-encoding a decoded package must preserve signature validity:
	// that is what lets TSR cache and re-serve packages byte-identically.
	signer := keys.Shared.MustGet("alpine@alpinelinux.org-4a40")
	p := samplePackage()
	if err := Sign(p, signer); err != nil {
		t.Fatal(err)
	}
	raw1, err := Encode(p)
	if err != nil {
		t.Fatal(err)
	}
	decoded, err := Decode(raw1)
	if err != nil {
		t.Fatal(err)
	}
	raw2, err := Encode(decoded)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(raw1, raw2) {
		t.Fatal("decode/encode roundtrip changed bytes")
	}
}

func TestCloneIndependence(t *testing.T) {
	p := samplePackage()
	cp := p.Clone()
	cp.Files[0].Content[0] = 'X'
	cp.Scripts["post-install"] = "changed"
	cp.Depends[0] = "changed"
	if p.Files[0].Content[0] == 'X' {
		t.Fatal("clone aliases file content")
	}
	if p.Scripts["post-install"] == "changed" {
		t.Fatal("clone aliases scripts")
	}
	if p.Depends[0] == "changed" {
		t.Fatal("clone aliases depends")
	}
}

func TestUncompressedSizeAndFileCount(t *testing.T) {
	p := samplePackage()
	if got := p.FileCount(); got != 2 {
		t.Fatalf("FileCount = %d", got)
	}
	want := int64(len("ELF...") + len("server pool.ntp.org\n"))
	if got := p.UncompressedSize(); got != want {
		t.Fatalf("UncompressedSize = %d, want %d", got, want)
	}
}

func TestEncodeRejectsRelativePath(t *testing.T) {
	p := &Package{Name: "x", Version: "1", Files: []File{{Path: "usr/bin/x"}}}
	if _, err := Encode(p); !errors.Is(err, ErrFormat) {
		t.Fatalf("err = %v", err)
	}
}

func TestDataHashChangesWithContent(t *testing.T) {
	p := samplePackage()
	h1, err := p.DataHash()
	if err != nil {
		t.Fatal(err)
	}
	p.Files[0].Content = []byte("different")
	h2, err := p.DataHash()
	if err != nil {
		t.Fatal(err)
	}
	if h1 == h2 {
		t.Fatal("hash did not change with content")
	}
}

func TestDataHashChangesWithXattr(t *testing.T) {
	// Signature injection (sanitization) must change the data hash —
	// this is exactly why TSR must re-sign and regenerate the index.
	p := samplePackage()
	h1, _ := p.DataHash()
	p.Files[1].Xattrs = map[string][]byte{XattrIMA: []byte("sig")}
	h2, _ := p.DataHash()
	if h1 == h2 {
		t.Fatal("hash did not change with xattr")
	}
}

func TestScriptNamesSorted(t *testing.T) {
	p := &Package{
		Name: "x", Version: "1",
		Scripts: map[string]string{"pre-upgrade": "", "post-install": "", "pre-install": ""},
	}
	got := p.ScriptNames()
	want := []string{"post-install", "pre-install", "pre-upgrade"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("names = %v", got)
	}
}

func TestRoundtripProperty(t *testing.T) {
	f := func(name string, content []byte, script string) bool {
		if name == "" {
			return true
		}
		p := &Package{
			Name:    fmt.Sprintf("%x", name),
			Version: "1.0-r0",
			Scripts: map[string]string{"post-install": script},
			Files: []File{
				{Path: "/data/blob", Mode: 0o644, Content: content},
			},
		}
		raw, err := Encode(p)
		if err != nil {
			return false
		}
		got, err := Decode(raw)
		if err != nil {
			return false
		}
		return got.Name == p.Name &&
			got.Scripts["post-install"] == script &&
			bytes.Equal(got.Files[0].Content, content)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRawControlSegmentMatchesControlBytes(t *testing.T) {
	p := samplePackage()
	raw, err := Encode(p)
	if err != nil {
		t.Fatal(err)
	}
	fromWire, err := RawControlSegment(raw)
	if err != nil {
		t.Fatal(err)
	}
	direct, err := p.ControlBytes()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(fromWire, direct) {
		t.Fatal("control segment bytes differ between Encode and ControlBytes")
	}
}

// Robustness: Decode never panics on arbitrary bytes.
func TestDecodeRobustnessProperty(t *testing.T) {
	f := func(raw []byte) bool {
		_, _ = Decode(raw)
		_, _ = RawControlSegment(raw)
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
