// Package flight implements request coalescing (singleflight): when N
// callers concurrently ask for the same key, exactly one of them — the
// leader — executes the function, and the other N-1 wait and share its
// result. This is the flash-crowd primitive behind the serving tier: a
// cold cache miss hit by correlated demand must cost one upstream pull
// (one origin fetch, one re-sanitization, one delta computation), not N
// identical ones that would melt the layer below exactly when it is
// busiest.
//
// The design mirrors golang.org/x/sync/singleflight (which this module
// deliberately does not depend on), with two differences: the group is
// generic over the result type, so callers share verified []byte or
// struct results without type assertions, and Do reports whether the
// caller was the leader — the serving tiers count followers separately
// (the "coalesced" metrics) because they are precisely the requests the
// coalescing saved.
package flight

import (
	"context"
	"errors"
	"sync"
)

// ErrLeaderPanicked is returned to waiters whose flight leader
// panicked out of fn. The panic itself propagates on the leader's
// goroutine (where the real stack trace is); waiters fail cleanly and
// may retry, starting a fresh flight.
var ErrLeaderPanicked = errors.New("flight: leader panicked during coalesced call")

// call is one in-flight execution of fn for a key.
type call[V any] struct {
	done chan struct{} // closed when val/err are final
	// ctx is the leader's context, recorded under the group lock at
	// registration so followers can read it race-free — the tracing
	// layer uses it to link a follower's span to the leader's span
	// (coalesced=true) instead of inventing an upstream call that
	// never happened.
	ctx context.Context
	val V
	err error
}

// Group coalesces concurrent calls by key. The zero value is ready to
// use. Results are shared by reference: callers must treat a shared
// result as immutable (copy before mutating).
type Group[V any] struct {
	mu    sync.Mutex
	calls map[string]*call[V]
}

// Do executes fn for key, unless another call for the same key is
// already in flight, in which case it waits for that call and shares
// its result. leader reports whether this caller executed fn itself.
//
// The result is handed to every waiter verbatim — including the error,
// so a failed leader fails its whole cohort (each follower retries on
// its own schedule, which is the correct shed behavior under a flash
// crowd: one upstream failure must not be amplified into N retries in
// lockstep). The key is forgotten as soon as the call completes; a
// caller arriving after that starts a fresh flight.
func (g *Group[V]) Do(key string, fn func() (V, error)) (v V, leader bool, err error) {
	v, _, leader, err = g.DoCtx(context.Background(), key, func(context.Context) (V, error) { return fn() })
	return v, leader, err
}

// DoCtx is Do with context plumbing for tracing: fn receives the
// leader's ctx, and every caller gets leaderCtx — the context the
// leader registered with. The leader's own leaderCtx is just its ctx;
// a follower uses leaderCtx to link its span to the leader's span
// rather than pretending it made the upstream call itself. The
// coalescing contract is unchanged from Do; cancellation of a
// follower's ctx does NOT detach it from the flight (results are
// shared verbatim, exactly as in Do).
func (g *Group[V]) DoCtx(ctx context.Context, key string, fn func(context.Context) (V, error)) (v V, leaderCtx context.Context, leader bool, err error) {
	g.mu.Lock()
	if g.calls == nil {
		g.calls = make(map[string]*call[V])
	}
	if c, ok := g.calls[key]; ok {
		g.mu.Unlock()
		<-c.done
		return c.val, c.ctx, false, c.err
	}
	c := &call[V]{done: make(chan struct{}), ctx: ctx}
	g.calls[key] = c
	g.mu.Unlock()

	// The leader runs fn outside the group lock, so flights for
	// different keys proceed concurrently. The unwind path is a defer:
	// a panicking fn must still unregister the flight and wake its
	// waiters, or every current AND future caller for this key would
	// block forever on a flight nobody is flying (each one pinning an
	// admission slot — a single latent panic would slowly drain the
	// daemon to a standstill). Forget the key before closing done: a
	// waiter woken by the close must not race a new caller into
	// joining this completed flight.
	completed := false
	defer func() {
		if !completed {
			c.err = ErrLeaderPanicked
		}
		g.mu.Lock()
		delete(g.calls, key)
		g.mu.Unlock()
		close(c.done)
	}()
	c.val, c.err = fn(ctx)
	completed = true
	return c.val, ctx, true, c.err
}

// Inflight reports the number of keys currently being executed, for
// tests and metrics.
func (g *Group[V]) Inflight() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return len(g.calls)
}
