package flight

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestDoCoalesces pins the core contract: K concurrent calls for one
// key execute fn exactly once, exactly one caller is the leader, and
// every caller sees the same result.
func TestDoCoalesces(t *testing.T) {
	const k = 64
	var g Group[int]
	var execs, leaders atomic.Int64
	gate := make(chan struct{})
	entered := make(chan struct{}, k)

	var wg sync.WaitGroup
	results := make([]int, k)
	for i := 0; i < k; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			entered <- struct{}{}
			v, leader, err := g.Do("key", func() (int, error) {
				execs.Add(1)
				<-gate // hold the flight open until all K have joined
				return 42, nil
			})
			if err != nil {
				t.Errorf("caller %d: %v", i, err)
			}
			if leader {
				leaders.Add(1)
			}
			results[i] = v
		}(i)
	}
	for i := 0; i < k; i++ {
		<-entered
	}
	close(gate)
	wg.Wait()

	if got := execs.Load(); got != 1 {
		t.Fatalf("fn executed %d times, want 1", got)
	}
	if got := leaders.Load(); got != 1 {
		t.Fatalf("%d leaders, want 1", got)
	}
	for i, v := range results {
		if v != 42 {
			t.Fatalf("caller %d got %d, want 42", i, v)
		}
	}
}

// TestDoDistinctKeys verifies flights for different keys run
// independently (and concurrently: the first flight is held open while
// the second completes).
func TestDoDistinctKeys(t *testing.T) {
	var g Group[string]
	gate := make(chan struct{})
	started := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		v, _, err := g.Do("a", func() (string, error) {
			close(started)
			<-gate
			return "A", nil
		})
		if err != nil || v != "A" {
			t.Errorf("key a: %q, %v", v, err)
		}
	}()
	<-started
	v, leader, err := g.Do("b", func() (string, error) { return "B", nil })
	if err != nil || v != "B" || !leader {
		t.Fatalf("key b: %q leader=%v err=%v", v, leader, err)
	}
	if g.Inflight() != 1 {
		t.Fatalf("inflight = %d, want 1 (key a still held)", g.Inflight())
	}
	close(gate)
	<-done
	if g.Inflight() != 0 {
		t.Fatalf("inflight = %d after completion, want 0", g.Inflight())
	}
}

// TestDoLeaderPanic verifies a panicking leader does not poison the
// key: waiters are released with ErrLeaderPanicked instead of blocking
// forever, the panic propagates on the leader's goroutine, and the
// next call for the key starts a fresh flight.
func TestDoLeaderPanic(t *testing.T) {
	var g Group[int]
	joined := make(chan struct{})
	boom := make(chan struct{})

	waiterDone := make(chan error, 1)
	go func() {
		<-joined
		_, _, err := g.Do("k", func() (int, error) { t.Error("waiter became leader"); return 0, nil })
		waiterDone <- err
	}()

	leaderDone := make(chan any, 1)
	go func() {
		defer func() { leaderDone <- recover() }()
		g.Do("k", func() (int, error) {
			close(joined)
			<-boom
			panic("leader exploded")
		})
	}()

	// Let the waiter join the open flight, then detonate the leader.
	<-joined
	time.Sleep(10 * time.Millisecond)
	close(boom)

	if p := <-leaderDone; p != "leader exploded" {
		t.Fatalf("leader panic = %v, want to propagate", p)
	}
	select {
	case err := <-waiterDone:
		if !errors.Is(err, ErrLeaderPanicked) {
			t.Fatalf("waiter err = %v, want ErrLeaderPanicked", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("waiter still blocked after leader panic — flight never unwound")
	}
	// The key is free again: a fresh call runs normally.
	v, leader, err := g.Do("k", func() (int, error) { return 9, nil })
	if err != nil || v != 9 || !leader {
		t.Fatalf("post-panic call: v=%d leader=%v err=%v", v, leader, err)
	}
	if g.Inflight() != 0 {
		t.Fatalf("inflight = %d, want 0", g.Inflight())
	}
}

// TestDoSharesError verifies a failed leader fails its cohort with the
// same error, and the key is forgotten so the next call retries fresh.
func TestDoSharesError(t *testing.T) {
	var g Group[int]
	sentinel := errors.New("upstream down")
	calls := 0
	_, _, err := g.Do("k", func() (int, error) { calls++; return 0, sentinel })
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v, want sentinel", err)
	}
	v, leader, err := g.Do("k", func() (int, error) { calls++; return 7, nil })
	if err != nil || v != 7 || !leader {
		t.Fatalf("retry: v=%d leader=%v err=%v", v, leader, err)
	}
	if calls != 2 {
		t.Fatalf("fn ran %d times, want 2 (no stale cached flight)", calls)
	}
}

// TestDoCtxExposesLeaderContext pins the tracing hook: fn runs with
// the leader's context, and every follower receives that same context
// back, so it can find the leader's span.
func TestDoCtxExposesLeaderContext(t *testing.T) {
	type ctxKey struct{}
	var g Group[int]
	gate := make(chan struct{})
	leaderIn := make(chan struct{})

	lctx := context.WithValue(context.Background(), ctxKey{}, "leader")
	var fnCtx atomic.Value
	go func() {
		_, gotCtx, leader, err := g.DoCtx(lctx, "key", func(ctx context.Context) (int, error) {
			fnCtx.Store(ctx)
			close(leaderIn)
			<-gate
			return 1, nil
		})
		if err != nil || !leader {
			t.Errorf("leader: leader=%v err=%v", leader, err)
		}
		if gotCtx != lctx {
			t.Error("leader did not get its own ctx back")
		}
	}()
	<-leaderIn

	fctx := context.WithValue(context.Background(), ctxKey{}, "follower")
	done := make(chan struct{})
	go func() {
		defer close(done)
		v, gotCtx, leader, err := g.DoCtx(fctx, "key", func(context.Context) (int, error) {
			t.Error("follower executed fn")
			return 0, nil
		})
		if err != nil || leader || v != 1 {
			t.Errorf("follower: v=%d leader=%v err=%v", v, leader, err)
		}
		if gotCtx == nil || gotCtx.Value(ctxKey{}) != "leader" {
			t.Errorf("follower leaderCtx value = %v, want leader's", gotCtx)
		}
	}()
	// The follower may not have joined yet; poll until it blocks on the
	// flight, then release the leader.
	for i := 0; i < 200; i++ {
		if g.Inflight() == 1 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	time.Sleep(10 * time.Millisecond)
	close(gate)
	<-done

	if got := fnCtx.Load(); got != lctx {
		t.Error("fn did not run with the leader's ctx")
	}
}
