package keys

import (
	"bytes"
	"errors"
	"testing"
)

func testPair(t *testing.T, name string) *Pair {
	t.Helper()
	p, err := Shared.Get(name)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestSignVerifyRoundtrip(t *testing.T) {
	p := testPair(t, "signer-a")
	data := []byte("package control segment")
	sig, err := p.Sign(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(sig) != SignatureSize {
		t.Fatalf("signature size = %d, want %d (paper: 256-byte signatures)", len(sig), SignatureSize)
	}
	if err := p.Public().Verify(data, sig); err != nil {
		t.Fatal(err)
	}
}

func TestVerifyRejectsTamper(t *testing.T) {
	p := testPair(t, "signer-a")
	data := []byte("original")
	sig, err := p.Sign(data)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Public().Verify([]byte("tampered"), sig); !errors.Is(err, ErrBadSignature) {
		t.Fatalf("tampered data: err = %v", err)
	}
	bad := append([]byte(nil), sig...)
	bad[0] ^= 0xff
	if err := p.Public().Verify(data, bad); !errors.Is(err, ErrBadSignature) {
		t.Fatalf("tampered sig: err = %v", err)
	}
}

func TestVerifyRejectsWrongKey(t *testing.T) {
	a := testPair(t, "signer-a")
	b := testPair(t, "signer-b")
	sig, err := a.Sign([]byte("data"))
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Public().Verify([]byte("data"), sig); !errors.Is(err, ErrBadSignature) {
		t.Fatalf("wrong key: err = %v", err)
	}
}

func TestSignDigest(t *testing.T) {
	p := testPair(t, "signer-a")
	var digest [32]byte
	copy(digest[:], bytes.Repeat([]byte{7}, 32))
	sig, err := p.SignDigest(digest)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Public().VerifyDigest(digest, sig); err != nil {
		t.Fatal(err)
	}
	digest[0] = 8
	if err := p.Public().VerifyDigest(digest, sig); !errors.Is(err, ErrBadSignature) {
		t.Fatalf("wrong digest: err = %v", err)
	}
}

func TestPEMRoundtrip(t *testing.T) {
	p := testPair(t, "signer-a")
	pemBytes, err := p.Public().MarshalPEM()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(pemBytes, []byte("BEGIN PUBLIC KEY")) {
		t.Fatalf("PEM = %q", pemBytes)
	}
	parsed, err := ParsePEM("reparsed", pemBytes)
	if err != nil {
		t.Fatal(err)
	}
	sig, err := p.Sign([]byte("x"))
	if err != nil {
		t.Fatal(err)
	}
	if err := parsed.Verify([]byte("x"), sig); err != nil {
		t.Fatalf("parsed key does not verify: %v", err)
	}
	if parsed.Fingerprint() != p.Public().Fingerprint() {
		t.Fatal("fingerprint changed across PEM roundtrip")
	}
}

func TestParsePEMErrors(t *testing.T) {
	if _, err := ParsePEM("x", []byte("not pem")); err == nil {
		t.Error("garbage input: want error")
	}
	if _, err := ParsePEM("x", []byte("-----BEGIN CERTIFICATE-----\nAA==\n-----END CERTIFICATE-----\n")); err == nil {
		t.Error("wrong block type: want error")
	}
}

func TestFingerprintStable(t *testing.T) {
	p := testPair(t, "signer-a")
	f1 := p.Public().Fingerprint()
	f2 := p.Public().Fingerprint()
	if f1 != f2 || len(f1) != 8 {
		t.Fatalf("fingerprints: %q, %q", f1, f2)
	}
	q := testPair(t, "signer-b")
	if q.Public().Fingerprint() == f1 {
		t.Fatal("distinct keys share a fingerprint")
	}
}

func TestRing(t *testing.T) {
	a := testPair(t, "signer-a")
	b := testPair(t, "signer-b")
	r := NewRing(a.Public(), b.Public())
	if r.Len() != 2 {
		t.Fatalf("Len = %d", r.Len())
	}
	names := r.Names()
	if len(names) != 2 || names[0] != "signer-a" || names[1] != "signer-b" {
		t.Fatalf("Names = %v", names)
	}
	if _, err := r.Get("signer-a"); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Get("missing"); !errors.Is(err, ErrUnknownKey) {
		t.Fatalf("err = %v", err)
	}
}

func TestRingVerifyAny(t *testing.T) {
	a := testPair(t, "signer-a")
	b := testPair(t, "signer-b")
	c := testPair(t, "signer-c")
	r := NewRing(a.Public(), b.Public())
	sig, err := b.Sign([]byte("data"))
	if err != nil {
		t.Fatal(err)
	}
	name, err := r.VerifyAny([]byte("data"), sig)
	if err != nil || name != "signer-b" {
		t.Fatalf("VerifyAny = %q, %v", name, err)
	}
	// A signature from an untrusted key must not verify.
	outsider, err := c.Sign([]byte("data"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.VerifyAny([]byte("data"), outsider); !errors.Is(err, ErrBadSignature) {
		t.Fatalf("outsider: err = %v", err)
	}
}

func TestRingVerifyBy(t *testing.T) {
	a := testPair(t, "signer-a")
	r := NewRing(a.Public())
	sig, err := a.Sign([]byte("data"))
	if err != nil {
		t.Fatal(err)
	}
	if err := r.VerifyBy("signer-a", []byte("data"), sig); err != nil {
		t.Fatal(err)
	}
	if err := r.VerifyBy("missing", []byte("data"), sig); !errors.Is(err, ErrUnknownKey) {
		t.Fatalf("err = %v", err)
	}
}

func TestZeroValueRing(t *testing.T) {
	var r Ring
	if r.Len() != 0 {
		t.Fatal("zero ring not empty")
	}
	a := testPair(t, "signer-a")
	r.Add(a.Public())
	if r.Len() != 1 {
		t.Fatal("Add on zero ring failed")
	}
}

func TestPoolCaches(t *testing.T) {
	var p Pool
	a1, err := p.Get("k")
	if err != nil {
		t.Fatal(err)
	}
	a2, err := p.Get("k")
	if err != nil {
		t.Fatal(err)
	}
	if a1 != a2 {
		t.Fatal("pool regenerated key")
	}
	if p.MustGet("k") != a1 {
		t.Fatal("MustGet mismatch")
	}
}
