package keys

import "sync"

// Pool lazily generates and caches key pairs by name. RSA key generation
// is expensive (hundreds of milliseconds), and the experiments create
// many actors (signers, mirrors, tenants) that each need a key; the pool
// ensures each named key is generated exactly once per process.
//
// The zero value is ready to use.
type Pool struct {
	mu    sync.Mutex
	pairs map[string]*Pair
}

// Get returns the cached pair for name, generating it on first use.
func (p *Pool) Get(name string) (*Pair, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if pair, ok := p.pairs[name]; ok {
		return pair, nil
	}
	pair, err := Generate(name)
	if err != nil {
		return nil, err
	}
	if p.pairs == nil {
		p.pairs = make(map[string]*Pair)
	}
	p.pairs[name] = pair
	return pair, nil
}

// MustGet is Get but panics on generation failure, for experiment setup
// code where key generation failure is unrecoverable.
func (p *Pool) MustGet(name string) *Pair {
	pair, err := p.Get(name)
	if err != nil {
		panic(err)
	}
	return pair
}

// Shared is the process-wide pool used by experiments and tests.
var Shared Pool
