// Package keys implements the digital signature scheme used throughout
// the reproduction: RSA-2048 with PKCS#1 v1.5 padding over SHA-256.
// The paper's size accounting ("each signature is 256 bytes") fixes the
// modulus size, matching the abuild RSA keys Alpine Linux uses.
//
// A Ring holds named public keys, modeling both the OS distribution's
// trusted signer list (/etc/apk/keys) and the verifier configuration of
// the integrity monitoring system.
package keys

import (
	"crypto"
	"crypto/rand"
	"crypto/rsa"
	"crypto/sha256"
	"crypto/x509"
	"encoding/pem"
	"errors"
	"fmt"
	"sort"
	"sync"
)

// SignatureSize is the byte length of every signature (RSA-2048).
const SignatureSize = 256

// Error sentinels.
var (
	ErrBadSignature = errors.New("keys: signature verification failed")
	ErrUnknownKey   = errors.New("keys: unknown key")
)

// Pair is a named RSA signing key pair.
type Pair struct {
	// Name identifies the key, e.g. "alpine@alpinelinux.org-4a40" or a
	// TSR repository identifier.
	Name string
	priv *rsa.PrivateKey
}

// Generate creates a new 2048-bit key pair with the given name.
func Generate(name string) (*Pair, error) {
	priv, err := rsa.GenerateKey(rand.Reader, 2048)
	if err != nil {
		return nil, fmt.Errorf("keys: generating %q: %w", name, err)
	}
	return &Pair{Name: name, priv: priv}, nil
}

// Sign returns the RSA PKCS#1 v1.5 signature of SHA-256(data).
func (p *Pair) Sign(data []byte) ([]byte, error) {
	digest := sha256.Sum256(data)
	sig, err := rsa.SignPKCS1v15(rand.Reader, p.priv, crypto.SHA256, digest[:])
	if err != nil {
		return nil, fmt.Errorf("keys: signing with %q: %w", p.Name, err)
	}
	return sig, nil
}

// SignDigest signs a precomputed SHA-256 digest.
func (p *Pair) SignDigest(digest [32]byte) ([]byte, error) {
	sig, err := rsa.SignPKCS1v15(rand.Reader, p.priv, crypto.SHA256, digest[:])
	if err != nil {
		return nil, fmt.Errorf("keys: signing digest with %q: %w", p.Name, err)
	}
	return sig, nil
}

// Public returns the public half of the pair.
func (p *Pair) Public() *Public {
	return &Public{Name: p.Name, key: &p.priv.PublicKey}
}

// Public is a named RSA public key.
type Public struct {
	Name string
	key  *rsa.PublicKey
}

// Verify checks sig against SHA-256(data).
func (k *Public) Verify(data, sig []byte) error {
	digest := sha256.Sum256(data)
	if err := rsa.VerifyPKCS1v15(k.key, crypto.SHA256, digest[:], sig); err != nil {
		return fmt.Errorf("%w: key %q", ErrBadSignature, k.Name)
	}
	return nil
}

// VerifyDigest checks sig against a precomputed SHA-256 digest.
func (k *Public) VerifyDigest(digest [32]byte, sig []byte) error {
	if err := rsa.VerifyPKCS1v15(k.key, crypto.SHA256, digest[:], sig); err != nil {
		return fmt.Errorf("%w: key %q", ErrBadSignature, k.Name)
	}
	return nil
}

// MarshalPEM encodes the public key as a PEM block, the format security
// policies embed under signers_keys (Listing 1).
func (k *Public) MarshalPEM() ([]byte, error) {
	der, err := x509.MarshalPKIXPublicKey(k.key)
	if err != nil {
		return nil, fmt.Errorf("keys: marshaling %q: %w", k.Name, err)
	}
	return pem.EncodeToMemory(&pem.Block{Type: "PUBLIC KEY", Bytes: der}), nil
}

// ParsePEM decodes a PEM public key and assigns it the given name.
func ParsePEM(name string, data []byte) (*Public, error) {
	block, _ := pem.Decode(data)
	if block == nil || block.Type != "PUBLIC KEY" {
		return nil, fmt.Errorf("keys: %q: no PUBLIC KEY PEM block", name)
	}
	parsed, err := x509.ParsePKIXPublicKey(block.Bytes)
	if err != nil {
		return nil, fmt.Errorf("keys: parsing %q: %w", name, err)
	}
	rsaKey, ok := parsed.(*rsa.PublicKey)
	if !ok {
		return nil, fmt.Errorf("keys: %q: not an RSA key", name)
	}
	return &Public{Name: name, key: rsaKey}, nil
}

// Fingerprint returns a short hex identifier of the public key, used to
// name signature files (".SIGN.RSA.<name>") and IMA log key IDs.
func (k *Public) Fingerprint() string {
	der, err := x509.MarshalPKIXPublicKey(k.key)
	if err != nil {
		// Marshaling an in-memory RSA key cannot fail in practice.
		return "invalid"
	}
	sum := sha256.Sum256(der)
	return fmt.Sprintf("%x", sum[:4])
}

// Ring is a set of trusted public keys indexed by name. The zero value is
// an empty, usable ring. Ring is safe for concurrent use.
type Ring struct {
	mu   sync.RWMutex
	keys map[string]*Public
}

// NewRing returns a ring containing the given keys.
func NewRing(keys ...*Public) *Ring {
	r := &Ring{}
	for _, k := range keys {
		r.Add(k)
	}
	return r
}

// Add inserts or replaces a key.
func (r *Ring) Add(k *Public) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.keys == nil {
		r.keys = make(map[string]*Public)
	}
	r.keys[k.Name] = k
}

// Get returns the key with the given name.
func (r *Ring) Get(name string) (*Public, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	k, ok := r.keys[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownKey, name)
	}
	return k, nil
}

// Names returns the sorted key names in the ring.
func (r *Ring) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	names := make([]string, 0, len(r.keys))
	for n := range r.keys {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Len returns the number of keys.
func (r *Ring) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.keys)
}

// VerifyAny checks sig over data against every key in the ring and
// returns the name of the first key that verifies it, or ErrBadSignature.
func (r *Ring) VerifyAny(data, sig []byte) (string, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	for _, k := range r.keys {
		if err := k.Verify(data, sig); err == nil {
			return k.Name, nil
		}
	}
	return "", fmt.Errorf("%w: no ring key matches", ErrBadSignature)
}

// VerifyAnyDigest checks sig over a precomputed SHA-256 digest against
// every key in the ring, returning the name of the first key that
// verifies it. IMA appraisal uses this to match per-file signatures
// against the trusted signer set.
func (r *Ring) VerifyAnyDigest(digest [32]byte, sig []byte) (string, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	for _, k := range r.keys {
		if err := k.VerifyDigest(digest, sig); err == nil {
			return k.Name, nil
		}
	}
	return "", fmt.Errorf("%w: no ring key matches digest signature", ErrBadSignature)
}

// VerifyBy checks sig over data against the named key.
func (r *Ring) VerifyBy(name string, data, sig []byte) error {
	k, err := r.Get(name)
	if err != nil {
		return err
	}
	return k.Verify(data, sig)
}

// MarshalPrivatePEM encodes the private key as a PKCS#8 PEM block. It
// exists so enclave code can seal a repository signing key into the
// untrusted store for warm restarts — the PEM must only ever travel
// inside a sealed blob.
func (p *Pair) MarshalPrivatePEM() ([]byte, error) {
	der, err := x509.MarshalPKCS8PrivateKey(p.priv)
	if err != nil {
		return nil, fmt.Errorf("keys: marshaling private %q: %w", p.Name, err)
	}
	return pem.EncodeToMemory(&pem.Block{Type: "PRIVATE KEY", Bytes: der}), nil
}

// ParsePrivatePEM decodes a PKCS#8 private key PEM and assigns it the
// given name — the inverse of MarshalPrivatePEM, used when restoring
// sealed repository state.
func ParsePrivatePEM(name string, data []byte) (*Pair, error) {
	block, _ := pem.Decode(data)
	if block == nil || block.Type != "PRIVATE KEY" {
		return nil, fmt.Errorf("keys: %q: no PRIVATE KEY PEM block", name)
	}
	parsed, err := x509.ParsePKCS8PrivateKey(block.Bytes)
	if err != nil {
		return nil, fmt.Errorf("keys: parsing private %q: %w", name, err)
	}
	rsaKey, ok := parsed.(*rsa.PrivateKey)
	if !ok {
		return nil, fmt.Errorf("keys: %q: not an RSA private key", name)
	}
	return &Pair{Name: name, priv: rsaKey}, nil
}
