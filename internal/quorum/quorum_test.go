package quorum

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"tsr/internal/apk"
	"tsr/internal/index"
	"tsr/internal/keys"
	"tsr/internal/mirror"
	"tsr/internal/netsim"
	"tsr/internal/repo"
)

// harness builds an original repository plus n mirrors on the given
// continents.
type harness struct {
	repo    *repo.Repository
	mirrors []*mirror.Mirror
	ring    *keys.Ring
}

func newHarness(t *testing.T, continents ...netsim.Continent) *harness {
	t.Helper()
	signer := keys.Shared.MustGet("repo-index-signer")
	r := repo.New("alpine-main", signer)
	p := &apk.Package{
		Name: "musl", Version: "1.1-r0",
		Files: []apk.File{{Path: "/lib/libc.so", Mode: 0o755, Content: []byte("v1")}},
	}
	if err := r.Publish(p); err != nil {
		t.Fatal(err)
	}
	h := &harness{repo: r, ring: keys.NewRing(signer.Public())}
	for i, c := range continents {
		m := mirror.New(fmt.Sprintf("https://mirror%d/", i), c)
		m.Sync(r)
		h.mirrors = append(h.mirrors, m)
	}
	return h
}

func (h *harness) reader(clock netsim.Clock, rng *netsim.RNG) *Reader {
	members := make([]Member, len(h.mirrors))
	for i, m := range h.mirrors {
		members[i] = Member{Host: m.Hostname, Continent: m.Continent, Source: m}
	}
	return &Reader{
		Local:     netsim.Europe,
		Link:      netsim.DefaultLinkModel(rng),
		Clock:     clock,
		TrustRing: h.ring,
		Members:   members,
	}
}

func (h *harness) publishUpdate(t *testing.T) {
	t.Helper()
	p := &apk.Package{
		Name: "musl", Version: "1.2-r0",
		Files: []apk.File{{Path: "/lib/libc.so", Mode: 0o755, Content: []byte("v2")}},
	}
	if err := h.repo.Publish(p); err != nil {
		t.Fatal(err)
	}
	for _, m := range h.mirrors {
		m.Sync(h.repo)
	}
}

func seqOf(t *testing.T, h *harness, s *index.Signed) uint64 {
	t.Helper()
	ix, err := s.Verify(h.ring)
	if err != nil {
		t.Fatal(err)
	}
	return ix.Sequence
}

func TestAllHonestQuorum(t *testing.T) {
	h := newHarness(t, netsim.Europe, netsim.Europe, netsim.Europe)
	res, err := h.reader(nil, nil).Read()
	if err != nil {
		t.Fatal(err)
	}
	if res.Agreeing < 2 {
		t.Fatalf("agreeing = %d", res.Agreeing)
	}
	// Fastest f+1 = 2 mirrors suffice when they agree.
	if res.Contacted != 2 {
		t.Fatalf("contacted = %d, want 2 (fastest f+1)", res.Contacted)
	}
	if seqOf(t, h, res.Index) != 1 {
		t.Fatal("wrong index")
	}
}

func TestToleratesFReplayMirrors(t *testing.T) {
	// 5 mirrors, f=2: two replay mirrors serving the stale index are
	// outvoted by three honest ones.
	h := newHarness(t, netsim.Europe, netsim.Europe, netsim.Europe, netsim.Europe, netsim.Europe)
	h.mirrors[0].SetBehavior(mirror.Replay)
	h.mirrors[1].SetBehavior(mirror.Replay)
	h.publishUpdate(t)
	res, err := h.reader(nil, netsim.NewRNG(1)).Read()
	if err != nil {
		t.Fatal(err)
	}
	if got := seqOf(t, h, res.Index); got != 2 {
		t.Fatalf("quorum chose stale index (seq %d)", got)
	}
	if res.Agreeing < 3 {
		t.Fatalf("agreeing = %d", res.Agreeing)
	}
}

func TestToleratesOfflineMirrors(t *testing.T) {
	h := newHarness(t, netsim.Europe, netsim.Europe, netsim.Europe)
	h.mirrors[2].SetBehavior(mirror.Offline)
	res, err := h.reader(nil, netsim.NewRNG(1)).Read()
	if err != nil {
		t.Fatal(err)
	}
	if res.Agreeing != 2 {
		t.Fatalf("agreeing = %d", res.Agreeing)
	}
}

func TestFailsWhenMajorityByzantine(t *testing.T) {
	// 3 mirrors, f=1: two replay mirrors can force the stale index —
	// but since the stale index is still a *valid signed* index, the
	// quorum accepts it. This demonstrates the threat-model boundary:
	// the paper assumes at most f compromised mirrors.
	h := newHarness(t, netsim.Europe, netsim.Europe, netsim.Europe)
	h.mirrors[0].SetBehavior(mirror.Replay)
	h.mirrors[1].SetBehavior(mirror.Replay)
	h.publishUpdate(t)
	res, err := h.reader(nil, netsim.NewRNG(1)).Read()
	if err != nil {
		t.Fatal(err)
	}
	if got := seqOf(t, h, res.Index); got != 1 {
		t.Fatalf("expected the attack to succeed beyond threshold, got seq %d", got)
	}
}

func TestNoQuorumWhenAllDisagree(t *testing.T) {
	// Three mirrors each serving a different index: no f+1 agreement.
	h := newHarness(t, netsim.Europe, netsim.Europe, netsim.Europe)
	h.mirrors[0].SetBehavior(mirror.Freeze) // seq 1
	h.publishUpdate(t)                      // honest now at seq 2
	h.mirrors[1].SetBehavior(mirror.Freeze) // seq 2
	h.publishUpdate(t)                      // honest now at seq 3
	if _, err := h.reader(nil, netsim.NewRNG(1)).Read(); !errors.Is(err, ErrNoQuorum) {
		t.Fatalf("err = %v", err)
	}
}

func TestRejectsForgedIndex(t *testing.T) {
	// A mirror serving an index signed by an untrusted key never votes.
	h := newHarness(t, netsim.Europe, netsim.Europe, netsim.Europe)
	forged := forgingSource{}
	r := h.reader(nil, netsim.NewRNG(1))
	r.Members[0].Source = forged
	res, err := r.Read()
	if err != nil {
		t.Fatal(err)
	}
	if res.Agreeing != 2 {
		t.Fatalf("agreeing = %d", res.Agreeing)
	}
}

// forgingSource serves an index signed by an adversary key.
type forgingSource struct{}

func (forgingSource) FetchIndex() (*index.Signed, error) {
	evil := keys.Shared.MustGet("evil-index-signer")
	ix := &index.Index{Origin: "alpine-main", Sequence: 99}
	return index.Sign(ix, evil)
}

func TestElapsedTracksFastestQuorum(t *testing.T) {
	// With European and Asian mirrors and an agreeing European
	// majority, latency must track Europe, not Asia (Figure 13 "All").
	h := newHarness(t,
		netsim.Europe, netsim.Europe, netsim.Europe,
		netsim.Asia, netsim.Asia)
	clock := netsim.NewVirtualClock(time.Time{})
	res, err := h.reader(clock, netsim.NewRNG(1)).Read()
	if err != nil {
		t.Fatal(err)
	}
	// Intra-Europe RTT is 26.4ms; Asia is 240ms. The quorum (3 of 5)
	// should complete well under the Asia round trip.
	if res.Elapsed > 200*time.Millisecond {
		t.Fatalf("elapsed = %v, expected European-quorum latency", res.Elapsed)
	}
	// The virtual clock advanced by exactly the modeled time.
	if got := clock.Now().Sub(time.Time{}); got != res.Elapsed {
		t.Fatalf("clock advanced %v, want %v", got, res.Elapsed)
	}
}

func TestWidensOnDisagreement(t *testing.T) {
	// The two fastest (European) mirrors disagree; the reader must
	// widen to further mirrors to find the f+1 quorum.
	h := newHarness(t, netsim.Europe, netsim.Europe,
		netsim.NorthAmerica, netsim.NorthAmerica, netsim.NorthAmerica)
	h.mirrors[0].SetBehavior(mirror.Freeze)
	h.mirrors[1].SetBehavior(mirror.Freeze)
	h.publishUpdate(t)
	res, err := h.reader(nil, netsim.NewRNG(1)).Read()
	if err != nil {
		t.Fatal(err)
	}
	if got := seqOf(t, h, res.Index); got != 2 {
		t.Fatalf("seq = %d", got)
	}
	if res.Contacted <= 3 {
		t.Fatalf("contacted = %d, expected widening past f+1", res.Contacted)
	}
}

func TestSingleMirror(t *testing.T) {
	// n=1, f=0: the default configuration of today's operating systems.
	h := newHarness(t, netsim.Europe)
	res, err := h.reader(nil, netsim.NewRNG(1)).Read()
	if err != nil {
		t.Fatal(err)
	}
	if res.Contacted != 1 || res.Agreeing != 1 {
		t.Fatalf("res = %+v", res)
	}
}

func TestNoMirrors(t *testing.T) {
	r := &Reader{}
	if _, err := r.Read(); !errors.Is(err, ErrNoMirrors) {
		t.Fatalf("err = %v", err)
	}
}

func TestMaxFaulty(t *testing.T) {
	for n, want := range map[int]int{1: 0, 2: 0, 3: 1, 5: 2, 9: 4, 10: 4} {
		r := &Reader{Members: make([]Member, n)}
		if got := r.MaxFaulty(); got != want {
			t.Errorf("MaxFaulty(%d) = %d, want %d", n, got, want)
		}
	}
}
