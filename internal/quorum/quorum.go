// Package quorum implements TSR's Byzantine-tolerant metadata reads
// (§4.5): TSR never trusts an individual mirror; it reads 2f+1 mirrors
// and relies only on the index version that at least f+1 mirrors agree
// on. Following the paper's implementation note on Figure 13, the
// reader takes the fastest f+1 responses first and widens to additional
// mirrors only if they disagree, so latency tracks the nearby mirrors.
package quorum

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"tsr/internal/index"
	"tsr/internal/keys"
	"tsr/internal/netsim"
)

// Error sentinels.
var (
	ErrNoQuorum  = errors.New("quorum: no f+1 mirrors agree on an index")
	ErrNoMirrors = errors.New("quorum: no mirrors configured")
)

// Source serves a signed metadata index (implemented by *mirror.Mirror).
type Source interface {
	FetchIndex() (*index.Signed, error)
}

// Member is one mirror in the read set.
type Member struct {
	Host      string
	Continent netsim.Continent
	Source    Source
}

// Reader performs quorum reads over a member set.
type Reader struct {
	// Local is the continent TSR runs on (Europe in the paper's setup).
	Local netsim.Continent
	// Link models request latency; if nil, transfers are instantaneous.
	Link *netsim.LinkModel
	// Clock is advanced by the modeled elapsed time of each read.
	Clock netsim.Clock
	// TrustRing verifies index signatures (the distribution's key).
	// Indexes failing verification cost time but never vote.
	TrustRing *keys.Ring
	// Members is the mirror set from the security policy.
	Members []Member
}

// MaxFaulty returns f for the configured member count.
func (r *Reader) MaxFaulty() int {
	if len(r.Members) == 0 {
		return 0
	}
	return (len(r.Members) - 1) / 2
}

// Result describes a completed quorum read.
type Result struct {
	// Index is the agreed signed index.
	Index *index.Signed
	// Elapsed is the modeled wall-clock time of the read: the latency
	// of the slowest mirror that had to be consulted.
	Elapsed time.Duration
	// Contacted is how many mirrors were consulted.
	Contacted int
	// Agreeing is how many consulted mirrors served the winning index.
	Agreeing int
}

// response is one mirror's (possibly failed) answer with its modeled
// latency.
type response struct {
	member  Member
	signed  *index.Signed
	digest  [32]byte
	err     error
	latency time.Duration
}

// Read performs one quorum read. It fails with ErrNoQuorum if fewer
// than f+1 mirrors agree on a verifiable index.
func (r *Reader) Read() (*Result, error) {
	n := len(r.Members)
	if n == 0 {
		return nil, ErrNoMirrors
	}
	f := r.MaxFaulty()
	need := f + 1

	// Model: all requests are issued in parallel; each response arrives
	// after its link latency. Responses failing signature verification
	// do not vote.
	responses := make([]response, 0, n)
	for _, m := range r.Members {
		resp := response{member: m}
		resp.signed, resp.err = m.Source.FetchIndex()
		var size int64
		if resp.signed != nil {
			size = resp.signed.Size()
			if r.TrustRing != nil {
				// Signature-only check: the winning index is decoded
				// once by the caller, not per vote.
				if err := resp.signed.VerifySignature(r.TrustRing); err != nil {
					resp.err = fmt.Errorf("mirror %s: %w", m.Host, err)
					resp.signed = nil
				}
			}
			if resp.signed != nil {
				resp.digest = resp.signed.Digest()
			}
		}
		if r.Link != nil {
			// The fastest f+1 transfers run concurrently and share the
			// paths' bandwidth, which is what makes larger quorums pay
			// more than a single mirror read (Figure 13's growth).
			resp.latency = r.Link.RequestResponseShared(r.Local, m.Continent, size, need)
		}
		responses = append(responses, resp)
	}
	sort.Slice(responses, func(i, j int) bool { return responses[i].latency < responses[j].latency })

	votes := make(map[[32]byte]int)
	var elapsed time.Duration
	for k, resp := range responses {
		if resp.latency > elapsed {
			elapsed = resp.latency
		}
		if resp.err == nil && resp.signed != nil {
			votes[resp.digest]++
		}
		// Quorum check only once the fastest f+1 responses are in
		// (contacting fewer can never produce f+1 matching votes).
		if k+1 < need {
			continue
		}
		if resp.err == nil && votes[resp.digest] >= need {
			r.sleep(elapsed)
			return &Result{
				Index:     resp.signed,
				Elapsed:   elapsed,
				Contacted: k + 1,
				Agreeing:  votes[resp.digest],
			}, nil
		}
		// Also re-check earlier digests: the (k+1)-th response may have
		// completed a quorum formed by earlier voters.
		for d, v := range votes {
			if v >= need {
				winner := findByDigest(responses[:k+1], d)
				r.sleep(elapsed)
				return &Result{
					Index:     winner,
					Elapsed:   elapsed,
					Contacted: k + 1,
					Agreeing:  v,
				}, nil
			}
		}
	}
	r.sleep(elapsed)
	return nil, fmt.Errorf("%w: %d mirrors, need %d matching votes, votes %v",
		ErrNoQuorum, n, need, voteCounts(votes))
}

func (r *Reader) sleep(d time.Duration) {
	if r.Clock != nil && d > 0 {
		r.Clock.Sleep(d)
	}
}

func findByDigest(responses []response, d [32]byte) *index.Signed {
	for _, resp := range responses {
		if resp.err == nil && resp.signed != nil && resp.digest == d {
			return resp.signed
		}
	}
	return nil
}

func voteCounts(votes map[[32]byte]int) []int {
	out := make([]int, 0, len(votes))
	for _, v := range votes {
		out = append(out, v)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(out)))
	return out
}
