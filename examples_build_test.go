package tsrbench

import (
	"os/exec"
	"testing"
)

// TestExamplesBuild compiles every program under examples/ so example
// drift is caught by the tier-1 suite (the examples have no test files
// of their own, so plain `go test ./...` would never build them).
func TestExamplesBuild(t *testing.T) {
	goBin, err := exec.LookPath("go")
	if err != nil {
		t.Skipf("go binary not found: %v", err)
	}
	cmd := exec.Command(goBin, "build", "./examples/...")
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("go build ./examples/... failed: %v\n%s", err, out)
	}
}
