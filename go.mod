module tsr

go 1.22
