// Byzantine-mirrors demonstrates §4.5: an adversary controlling a
// minority of mirrors mounts replay and freeze attacks (Figure 5), and
// TSR's quorum outvotes them, so the OS still receives the security
// update. The example then pushes past the threat model (a Byzantine
// majority) to show where the guarantee ends.
//
// Run: go run ./examples/byzantine-mirrors
package main

import (
	"fmt"
	"log"
	"strings"

	"tsr/internal/apk"
	"tsr/internal/enclave"
	"tsr/internal/keys"
	"tsr/internal/mirror"
	"tsr/internal/netsim"
	"tsr/internal/policy"
	"tsr/internal/quorum"
	"tsr/internal/repo"
	"tsr/internal/tpm"
	"tsr/internal/tsr"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	distro, err := keys.Generate("alpine@example.org")
	if err != nil {
		return err
	}
	origin := repo.New("alpine-main", distro)
	publish := func(version, payload string) error {
		p := &apk.Package{
			Name: "openssl", Version: version,
			Files: []apk.File{{Path: "/usr/lib/libssl.so", Mode: 0o755, Content: []byte(payload)}},
		}
		if err := apk.Sign(p, distro); err != nil {
			return err
		}
		return origin.Publish(p)
	}
	if err := publish("1.1.1f-r0", "vulnerable to CVE-XXXX"); err != nil {
		return err
	}

	// Five mirrors: the policy tolerates f = 2 Byzantine ones.
	mirrors := map[string]*mirror.Mirror{}
	var pol policy.Policy
	for i := 0; i < 5; i++ {
		host := fmt.Sprintf("https://mirror%d/", i)
		m := mirror.New(host, netsim.Europe)
		m.Sync(origin)
		mirrors[host] = m
		pol.Mirrors = append(pol.Mirrors, policy.Mirror{Hostname: host, Location: "Europe"})
	}
	pem, err := distro.Public().MarshalPEM()
	if err != nil {
		return err
	}
	pol.SignerKeys = []string{strings.TrimRight(string(pem), "\n")}

	platform, err := enclave.NewPlatform(keys.Shared.MustGet("byz-quoting"))
	if err != nil {
		return err
	}
	svc, err := tsr.New(tsr.Config{
		Platform: platform,
		TPM:      tpm.New(keys.Shared.MustGet("byz-host-tpm")),
		Link:     netsim.DefaultLinkModel(netsim.NewRNG(7)),
		Clock:    netsim.NewVirtualClock(netsim.RealClock{}.Now()),
		Local:    netsim.Europe,
		Resolve: func(m policy.Mirror) (quorum.Source, tsr.PackageFetcher, error) {
			mm, ok := mirrors[m.Hostname]
			if !ok {
				return nil, nil, fmt.Errorf("unknown mirror %q", m.Hostname)
			}
			return mm, mm, nil
		},
	})
	if err != nil {
		return err
	}
	repoID, _, _, err := svc.DeployPolicy(pol.Marshal())
	if err != nil {
		return err
	}
	tenant, err := svc.Repo(repoID)
	if err != nil {
		return err
	}
	if _, err := tenant.Refresh(); err != nil {
		return err
	}
	fmt.Println("1. TSR serves openssl-1.1.1f-r0 (the vulnerable version) — all mirrors honest")

	// The adversary compromises two mirrors BEFORE the security update
	// propagates: one replays the old snapshot, one freezes.
	mirrors["https://mirror0/"].SetBehavior(mirror.Replay)
	mirrors["https://mirror1/"].SetBehavior(mirror.Freeze)
	fmt.Println("2. adversary compromises 2/5 mirrors (replay + freeze)")

	// The distribution ships the security fix; honest mirrors sync.
	if err := publish("1.1.1g-r0", "CVE fixed"); err != nil {
		return err
	}
	for _, m := range mirrors {
		m.Sync(origin)
	}

	stats, err := tenant.Refresh()
	if err != nil {
		return err
	}
	served := version(tenant)
	fmt.Printf("3. quorum read contacted %d mirrors; TSR now serves openssl-%s\n",
		stats.MirrorsContacted, served)
	if served != "1.1.1g-r0" {
		return fmt.Errorf("expected the security fix to win the quorum")
	}

	// Beyond the threat model: a third mirror falls. The Byzantine
	// mirrors are now a majority and can pin the old (validly signed)
	// index — the freeze attack succeeds, which is exactly why the
	// paper's assumption is a minority of faulty mirrors.
	mirrors["https://mirror2/"].SetBehavior(mirror.Replay)
	if err := publish("1.1.1h-r0", "next fix"); err != nil {
		return err
	}
	for _, m := range mirrors {
		m.Sync(origin)
	}
	if _, err := tenant.Refresh(); err != nil {
		fmt.Printf("4. with 3/5 mirrors Byzantine the refresh fails closed: %v\n", err)
	} else {
		fmt.Printf("4. with 3/5 mirrors Byzantine TSR still serves openssl-%s — the stale-but-signed index won\n",
			version(tenant))
	}
	fmt.Println("   (the guarantee holds only for f faulty mirrors out of 2f+1, as in §3.1)")
	return nil
}

// version reports the openssl version the tenant currently serves.
func version(tenant *tsr.Repo) string {
	raw, err := tenant.FetchPackage("openssl")
	if err != nil {
		return "<error: " + err.Error() + ">"
	}
	p, err := apk.Decode(raw)
	if err != nil {
		return "<corrupt>"
	}
	return p.Version
}
