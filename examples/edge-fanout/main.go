// Edge-fanout demonstrates the untrusted edge replication tier: trust
// travels with the data (the enclave-signed index, content-addressed
// packages), so any host can replicate a TSR origin and be verified
// end-to-end by the client. The walkthrough stands up an origin with
// three edge replicas on three continents, shows delta syncs and the
// pull-through cache absorbing origin traffic, and then turns one
// replica byzantine — replaying a frozen snapshot and tampering with
// package bytes — to show clients converging on the honest edges with
// zero unverified bytes accepted.
//
// Run: go run ./examples/edge-fanout
package main

import (
	"fmt"
	"log"
	"strings"
	"time"

	"tsr/internal/apk"
	"tsr/internal/edge"
	"tsr/internal/enclave"
	"tsr/internal/keys"
	"tsr/internal/mirror"
	"tsr/internal/netsim"
	"tsr/internal/policy"
	"tsr/internal/quorum"
	"tsr/internal/repo"
	"tsr/internal/tpm"
	"tsr/internal/tsr"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// --- the origin: a TSR service with one refreshed tenant ----------
	distro, err := keys.Generate("alpine@example.org")
	if err != nil {
		return err
	}
	origin := repo.New("alpine-main", distro)
	publish := func(name, version string) error {
		p := &apk.Package{
			Name: name, Version: version,
			Files: []apk.File{{Path: "/usr/bin/" + name, Mode: 0o755, Content: []byte(name + version)}},
		}
		if err := apk.Sign(p, distro); err != nil {
			return err
		}
		if err := origin.Publish(p); err != nil {
			return err
		}
		return nil
	}
	for _, name := range []string{"busybox", "musl", "openssl"} {
		if err := publish(name, "1.0-r0"); err != nil {
			return err
		}
	}

	mirrors := map[string]*mirror.Mirror{}
	var pol policy.Policy
	for i := 0; i < 3; i++ {
		host := fmt.Sprintf("https://mirror%d/", i)
		m := mirror.New(host, netsim.Europe)
		m.Sync(origin)
		mirrors[host] = m
		pol.Mirrors = append(pol.Mirrors, policy.Mirror{Hostname: host, Location: "Europe"})
	}
	syncMirrors := func() {
		for _, m := range mirrors {
			m.Sync(origin)
		}
	}
	pem, err := distro.Public().MarshalPEM()
	if err != nil {
		return err
	}
	pol.SignerKeys = []string{strings.TrimRight(string(pem), "\n")}

	platform, err := enclave.NewPlatform(keys.Shared.MustGet("example-edge-quoting"))
	if err != nil {
		return err
	}
	svc, err := tsr.New(tsr.Config{
		Platform: platform,
		TPM:      tpm.New(keys.Shared.MustGet("example-edge-tpm")),
		Clock:    netsim.NewVirtualClock(time.Time{}),
		Link:     netsim.DefaultLinkModel(nil),
		Local:    netsim.Europe,
		Store:    tsr.NewMemStore(),
		EPC:      enclave.DefaultCostModel(),
		Resolve: func(m policy.Mirror) (quorum.Source, tsr.PackageFetcher, error) {
			mm, ok := mirrors[m.Hostname]
			if !ok {
				return nil, nil, fmt.Errorf("unknown mirror %q", m.Hostname)
			}
			return mm, mm, nil
		},
	})
	if err != nil {
		return err
	}
	id, _, _, err := svc.DeployPolicy(pol.Marshal())
	if err != nil {
		return err
	}
	tenant, err := svc.Repo(id)
	if err != nil {
		return err
	}
	if _, err := tenant.Refresh(); err != nil {
		return err
	}
	trust := keys.NewRing(tenant.PublicKey())
	fmt.Printf("origin: tenant %s refreshed, serving %s\n\n", id, short(tenant))

	// --- three edge replicas on three continents ----------------------
	fmt.Println("== edge tier: untrusted replicas, verified end-to-end ==")
	conts := []netsim.Continent{netsim.Europe, netsim.NorthAmerica, netsim.Oceania}
	replicas := make([]*edge.Replica, len(conts))
	endpoints := make([]edge.Endpoint, 0, len(conts)+1)
	for i, cont := range conts {
		replicas[i] = &edge.Replica{RepoID: id, Origin: tenant, Continent: cont, TrustRing: trust}
		if err := replicas[i].Sync(); err != nil {
			return err
		}
		fmt.Printf("edge-%d (%s): first sync -> full index fetch (etag %.16s...)\n",
			i, cont, replicas[i].ETag())
		endpoints = append(endpoints, edge.Endpoint{
			Name: fmt.Sprintf("edge-%d-%s", i, cont), Continent: cont, Fetcher: replicas[i]})
	}
	endpoints = append(endpoints, edge.Endpoint{Name: "origin", Continent: netsim.Europe, Fetcher: tenant})

	// A new origin generation reaches the replicas as a DELTA: only the
	// changed entries travel, under the origin's signature over the new
	// index, which each replica reproduces byte-for-byte and self-checks.
	if err := publish("openssl", "1.1-r0"); err != nil {
		return err
	}
	syncMirrors()
	if _, err := tenant.Refresh(); err != nil {
		return err
	}
	for i, rep := range replicas {
		if err := rep.Sync(); err != nil {
			return err
		}
		s := rep.Stats()
		fmt.Printf("edge-%d (%s): second sync -> delta (full=%d delta=%d)\n",
			i, conts[i], s.FullSyncs, s.DeltaSyncs)
	}

	// --- a client in Oceania reads through the edge tier --------------
	fmt.Println("\n== client in Oceania: latency-aware selection + pull-through cache ==")
	client := &edge.FailoverClient{
		Local:     netsim.Oceania,
		Link:      netsim.DefaultLinkModel(nil),
		Clock:     netsim.NewVirtualClock(time.Time{}),
		TrustRing: trust,
		Endpoints: endpoints,
	}
	if _, err := client.FetchIndex(); err != nil {
		return err
	}
	for _, name := range []string{"busybox", "musl", "openssl"} {
		if _, err := client.FetchPackage(name); err != nil {
			return err
		}
	}
	for _, name := range []string{"busybox", "musl", "openssl"} { // warm pass
		if _, err := client.FetchPackage(name); err != nil {
			return err
		}
	}
	fmt.Printf("client served by: %v\n", client.Stats().PerEndpoint)
	oce := replicas[2].Stats()
	fmt.Printf("edge-2 (Oceania): %d reads, %d cache hits, %d origin pulls — the origin saw %d of the client's %d package requests\n",
		oce.PackageReads, oce.PackageHits, oce.OriginPackages, oce.OriginPackages, 6)

	// --- byzantine replica: frozen snapshot replay --------------------
	fmt.Println("\n== byzantine edge: frozen replay + tampering, detected client-side ==")
	replicas[2].SetBehavior(edge.Freeze)                 // nearest to our client: replays the past
	replicas[1].SetBehavior(edge.Corrupt)                // tampers with package bodies (its index stays honest)
	if err := publish("openssl", "1.2-r0"); err != nil { // the update the frozen edge hides
		return err
	}
	syncMirrors()
	if _, err := tenant.Refresh(); err != nil {
		return err
	}
	// Everyone but the frozen replica follows the origin (a Corrupt
	// replica relays the signed index faithfully — it can only lie in
	// package bodies, and those are hash-checked).
	for _, rep := range replicas[:2] {
		if err := rep.Sync(); err != nil {
			return err
		}
	}

	fresh := &edge.FailoverClient{
		Local:     netsim.Oceania,
		Link:      netsim.DefaultLinkModel(nil),
		Clock:     netsim.NewVirtualClock(time.Time{}),
		TrustRing: trust,
		Endpoints: endpoints,
		QuorumK:   3, // cross-check the index across 3 edges
	}
	signed, err := fresh.FetchIndex()
	if err != nil {
		return err
	}
	ix, err := signed.Verify(trust)
	if err != nil {
		return err
	}
	e, _ := ix.Lookup("openssl")
	fmt.Printf("quorum index read: the frozen edge is outvoted by current ones -> openssl %s (sequence %d)\n",
		e.Version, ix.Sequence)
	if _, err := fresh.FetchPackage("openssl"); err != nil {
		return err
	}
	s := fresh.Stats()
	fmt.Printf("package fetch: %d tampered responses rejected, %d failovers -> served verified bytes by %v\n",
		s.RejectedBytes, s.Failovers, served(s.PerEndpoint))
	fmt.Println("\nzero unverified bytes accepted: every index carried the origin's signature, every package hashed to its signed entry")
	return nil
}

func short(tenant *tsr.Repo) string {
	signed, etag, err := tenant.FetchIndexTagged()
	if err != nil {
		return err.Error()
	}
	return fmt.Sprintf("%d index bytes under etag %.16s...", len(signed.Raw), etag)
}

func served(per map[string]int64) []string {
	var out []string
	for name, n := range per {
		if n > 0 {
			out = append(out, fmt.Sprintf("%s(%d)", name, n))
		}
	}
	return out
}
