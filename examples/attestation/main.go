// Attestation demonstrates the paper's Figure 1 problem and TSR's fix:
//
//   - installing an update straight from a mirror changes measurements
//     the verifier does not know — a FALSE POSITIVE: the monitoring
//     system flags a healthy machine;
//   - an actual compromise is flagged too (true positive) — the
//     verifier cannot tell the two apart;
//   - the same update served through TSR carries signatures for every
//     changed file and for the predicted configuration, so attestation
//     stays green while the compromise is still detected.
//
// Run: go run ./examples/attestation
package main

import (
	"fmt"
	"log"
	"strings"

	"tsr/internal/apk"
	"tsr/internal/attest"
	"tsr/internal/enclave"
	"tsr/internal/keys"
	"tsr/internal/mirror"
	"tsr/internal/netsim"
	"tsr/internal/osimage"
	"tsr/internal/pkgmgr"
	"tsr/internal/policy"
	"tsr/internal/quorum"
	"tsr/internal/repo"
	"tsr/internal/tpm"
	"tsr/internal/tsr"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

// newOS boots a fresh integrity-enforced OS and a verifier that has
// whitelisted its golden image.
func newOS(trusted *keys.Ring) (*osimage.Image, *attest.Verifier, error) {
	img, err := osimage.New(keys.Shared.MustGet("attest-os-ak"), nil)
	if err != nil {
		return nil, nil, err
	}
	v := attest.NewVerifier(img.TPM.AttestationKey(), trusted)
	if err := img.IMA.MeasureTree("/etc"); err != nil {
		return nil, nil, err
	}
	v.WhitelistImage(img)
	return img, v, nil
}

func run() error {
	distro, err := keys.Generate("alpine@example.org")
	if err != nil {
		return err
	}
	origin := repo.New("alpine-main", distro)
	update := &apk.Package{
		Name: "zlib", Version: "1.2.12-r0",
		Scripts: map[string]string{"post-install": "adduser -S -s /sbin/nologin zsvc\n"},
		Files:   []apk.File{{Path: "/usr/lib/libz.so", Mode: 0o755, Content: []byte("libz 1.2.12 security fix")}},
	}
	if err := apk.Sign(update, distro); err != nil {
		return err
	}
	if err := origin.Publish(update); err != nil {
		return err
	}
	m := mirror.New("https://mirror0/", netsim.Europe)
	m.Sync(origin)

	// --- Scenario A: plain mirror update -> false positive. ----------
	imgA, verifierA, err := newOS(keys.NewRing(distro.Public()))
	if err != nil {
		return err
	}
	mgrA := pkgmgr.New(imgA, m, keys.NewRing(distro.Public()), keys.NewRing(distro.Public()))
	if err := mgrA.Refresh(); err != nil {
		return err
	}
	if _, err := mgrA.Install("zlib"); err != nil {
		return err
	}
	resA, err := verifierA.Attest(imgA)
	if err != nil {
		return err
	}
	fmt.Printf("A. legitimate update from a plain mirror: attestation OK=%v, %d violations (FALSE POSITIVE)\n",
		resA.OK, len(resA.Violations()))
	for _, v := range resA.Violations() {
		fmt.Printf("   - %s: %s\n", v.Path, v.Reason)
	}

	// --- Scenario B: actual compromise -> true positive. -------------
	imgB, verifierB, err := newOS(keys.NewRing(distro.Public()))
	if err != nil {
		return err
	}
	if err := imgB.FS.WriteFile("/usr/lib/libz.so", []byte("backdoored libz"), 0o755); err != nil {
		return err
	}
	if _, err := imgB.IMA.MeasureFile("/usr/lib/libz.so"); err != nil {
		return err
	}
	resB, err := verifierB.Attest(imgB)
	if err != nil {
		return err
	}
	fmt.Printf("B. adversary-tampered library:               attestation OK=%v, %d violations (TRUE POSITIVE)\n",
		resB.OK, len(resB.Violations()))
	fmt.Println("   -> the verifier cannot distinguish A from B: that is the paper's problem statement")

	// --- Scenario C: the same update through TSR. ---------------------
	platform, err := enclave.NewPlatform(keys.Shared.MustGet("attest-quoting"))
	if err != nil {
		return err
	}
	mirrorsByHost := map[string]*mirror.Mirror{"https://mirror0/": m}
	svc, err := tsr.New(tsr.Config{
		Platform: platform,
		TPM:      tpm.New(keys.Shared.MustGet("attest-host-tpm")),
		Link:     netsim.DefaultLinkModel(netsim.NewRNG(1)),
		Clock:    netsim.NewVirtualClock(netsim.RealClock{}.Now()),
		Local:    netsim.Europe,
		Resolve: func(pm policy.Mirror) (quorum.Source, tsr.PackageFetcher, error) {
			mm, ok := mirrorsByHost[pm.Hostname]
			if !ok {
				return nil, nil, fmt.Errorf("unknown mirror %q", pm.Hostname)
			}
			return mm, mm, nil
		},
	})
	if err != nil {
		return err
	}
	pem, err := distro.Public().MarshalPEM()
	if err != nil {
		return err
	}
	pol := policy.Policy{
		Mirrors:    []policy.Mirror{{Hostname: "https://mirror0/", Location: "Europe"}},
		SignerKeys: []string{strings.TrimRight(string(pem), "\n")},
	}
	repoID, pubPEM, _, err := svc.DeployPolicy(pol.Marshal())
	if err != nil {
		return err
	}
	tenant, err := svc.Repo(repoID)
	if err != nil {
		return err
	}
	if _, err := tenant.Refresh(); err != nil {
		return err
	}
	tsrPub, err := keys.ParsePEM("tsr-"+repoID, pubPEM)
	if err != nil {
		return err
	}

	imgC, verifierC, err := newOS(keys.NewRing(distro.Public()))
	if err != nil {
		return err
	}
	// §4.5: "adjusting integrity monitoring systems configuration to
	// trust TSR signing key".
	verifierC.TrustKey(tsrPub)
	mgrC := pkgmgr.New(imgC, tenant, keys.NewRing(tsrPub), keys.NewRing(tsrPub))
	if err := mgrC.Refresh(); err != nil {
		return err
	}
	if _, err := mgrC.Install("zlib"); err != nil {
		return err
	}
	resC, err := verifierC.Attest(imgC)
	if err != nil {
		return err
	}
	fmt.Printf("C. the same update through TSR:              attestation OK=%v, %d violations (no false positive)\n",
		resC.OK, len(resC.Violations()))

	// And a compromise of the TSR-updated machine is still caught.
	if err := imgC.FS.WriteFile("/usr/lib/libz.so", []byte("backdoored after update"), 0o755); err != nil {
		return err
	}
	if _, err := imgC.IMA.MeasureFile("/usr/lib/libz.so"); err != nil {
		return err
	}
	resD, err := verifierC.Attest(imgC)
	if err != nil {
		return err
	}
	fmt.Printf("D. compromise after the TSR update:          attestation OK=%v (still a TRUE POSITIVE)\n", resD.OK)
	return nil
}
