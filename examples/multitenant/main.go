// Multitenant demonstrates §5.2: multiple clients share a single TSR
// instance, each deploying their own security policy and receiving a
// logically separated repository with its own signing key. Tenant A
// trusts the distribution's signer; tenant B additionally trusts a
// vendor key, so a vendor-signed package is served to B but rejected
// for A. The sealed-state restart path (§5.5) is exercised at the end.
//
// Run: go run ./examples/multitenant
package main

import (
	"fmt"
	"log"
	"strings"

	"tsr/internal/apk"
	"tsr/internal/enclave"
	"tsr/internal/keys"
	"tsr/internal/mirror"
	"tsr/internal/netsim"
	"tsr/internal/policy"
	"tsr/internal/quorum"
	"tsr/internal/repo"
	"tsr/internal/tpm"
	"tsr/internal/tsr"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func pemOf(p *keys.Pair) (string, error) {
	b, err := p.Public().MarshalPEM()
	if err != nil {
		return "", err
	}
	return strings.TrimRight(string(b), "\n"), nil
}

func run() error {
	distro, err := keys.Generate("alpine@example.org")
	if err != nil {
		return err
	}
	vendor, err := keys.Generate("vendor@acme.example")
	if err != nil {
		return err
	}

	// The original repository carries one distribution package and one
	// vendor-signed package (e.g. a commercial agent shipped through
	// the same mirror network).
	origin := repo.New("alpine-main", distro)
	base := &apk.Package{
		Name: "busybox", Version: "1.35-r0",
		Files: []apk.File{{Path: "/bin/busybox", Mode: 0o755, Content: []byte("busybox")}},
	}
	if err := apk.Sign(base, distro); err != nil {
		return err
	}
	agent := &apk.Package{
		Name: "acme-agent", Version: "2.0-r0",
		Files: []apk.File{{Path: "/usr/bin/acme-agent", Mode: 0o755, Content: []byte("agent")}},
	}
	if err := apk.Sign(agent, vendor); err != nil {
		return err
	}
	if err := origin.Publish(base, agent); err != nil {
		return err
	}
	m := mirror.New("https://mirror0/", netsim.Europe)
	m.Sync(origin)

	platform, err := enclave.NewPlatform(keys.Shared.MustGet("mt-quoting"))
	if err != nil {
		return err
	}
	svc, err := tsr.New(tsr.Config{
		Platform: platform,
		TPM:      tpm.New(keys.Shared.MustGet("mt-host-tpm")),
		Link:     netsim.DefaultLinkModel(netsim.NewRNG(3)),
		Clock:    netsim.NewVirtualClock(netsim.RealClock{}.Now()),
		Local:    netsim.Europe,
		Resolve: func(pm policy.Mirror) (quorum.Source, tsr.PackageFetcher, error) {
			if pm.Hostname != "https://mirror0/" {
				return nil, nil, fmt.Errorf("unknown mirror %q", pm.Hostname)
			}
			return m, m, nil
		},
	})
	if err != nil {
		return err
	}

	distroPEM, err := pemOf(distro)
	if err != nil {
		return err
	}
	vendorPEM, err := pemOf(vendor)
	if err != nil {
		return err
	}
	deploy := func(signerPEMs ...string) (*tsr.Repo, string, error) {
		pol := policy.Policy{
			Mirrors:    []policy.Mirror{{Hostname: "https://mirror0/", Location: "Europe"}},
			SignerKeys: signerPEMs,
		}
		id, _, _, err := svc.DeployPolicy(pol.Marshal())
		if err != nil {
			return nil, "", err
		}
		r, err := svc.Repo(id)
		if err != nil {
			return nil, "", err
		}
		if _, err := r.Refresh(); err != nil {
			return nil, "", err
		}
		return r, id, nil
	}

	tenantA, idA, err := deploy(distroPEM)
	if err != nil {
		return err
	}
	tenantB, idB, err := deploy(distroPEM, vendorPEM)
	if err != nil {
		return err
	}
	fmt.Printf("1. one TSR instance, two tenants: %s (distro key only) and %s (distro + vendor)\n", idA, idB)
	fmt.Printf("   tenant keys differ: %s vs %s\n",
		tenantA.PublicKey().Fingerprint(), tenantB.PublicKey().Fingerprint())

	serves := func(r *tsr.Repo, name string) bool {
		_, err := r.FetchPackage(name)
		return err == nil
	}
	fmt.Printf("2. tenant A serves busybox=%v acme-agent=%v (vendor package rejected: untrusted signer)\n",
		serves(tenantA, "busybox"), serves(tenantA, "acme-agent"))
	fmt.Printf("   tenant B serves busybox=%v acme-agent=%v\n",
		serves(tenantB, "busybox"), serves(tenantB, "acme-agent"))

	// A package sanitized for tenant A does not verify under tenant B's
	// key: the repositories are cryptographically separated.
	rawA, err := tenantA.FetchPackage("busybox")
	if err != nil {
		return err
	}
	if _, _, err := apk.VerifyRaw(rawA, keys.NewRing(tenantB.PublicKey())); err == nil {
		return fmt.Errorf("tenant B key verified tenant A's package")
	}
	fmt.Println("3. tenant A's packages do not verify under tenant B's key (logical separation)")

	// Restart survival: seal, "restart", restore, serve again.
	sealed, err := tenantA.SealState()
	if err != nil {
		return err
	}
	if err := tenantA.RestoreState(sealed); err != nil {
		return err
	}
	if !serves(tenantA, "busybox") {
		return fmt.Errorf("tenant A broken after restore")
	}
	fmt.Println("4. sealed state (SGX sealing + TPM monotonic counter) survives a TSR restart")
	return nil
}
