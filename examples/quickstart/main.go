// Quickstart walks the complete Figure 6 flow end to end:
//
//  1. an OS distribution publishes packages to its repository; mirrors
//     sync it;
//  2. an organization deploys a security policy to TSR (verifying the
//     enclave via remote attestation) and receives the repository's
//     public signing key;
//  3. TSR quorum-reads the metadata index, sanitizes the packages, and
//     serves them;
//  4. an integrity-enforced OS installs a package through its package
//     manager pointed at TSR;
//  5. the integrity monitoring system attests the OS — and accepts the
//     update (no false positive).
//
// Run: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"strings"

	"tsr/internal/apk"
	"tsr/internal/attest"
	"tsr/internal/enclave"
	"tsr/internal/keys"
	"tsr/internal/mirror"
	"tsr/internal/netsim"
	"tsr/internal/osimage"
	"tsr/internal/pkgmgr"
	"tsr/internal/policy"
	"tsr/internal/quorum"
	"tsr/internal/repo"
	"tsr/internal/tpm"
	"tsr/internal/tsr"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// --- 1. The distribution publishes packages; mirrors sync. -------
	distro, err := keys.Generate("alpine@example.org")
	if err != nil {
		return err
	}
	origin := repo.New("alpine-main", distro)
	ntpd := &apk.Package{
		Name: "ntpd", Version: "4.2.8-r0",
		Scripts: map[string]string{
			"post-install": "addgroup -S ntp\nadduser -S -G ntp -s /sbin/nologin ntp\nmkdir -p /var/lib/ntp\nchown ntp /var/lib/ntp\n",
		},
		Files: []apk.File{
			{Path: "/usr/sbin/ntpd", Mode: 0o755, Content: []byte("ntpd binary v4.2.8")},
			{Path: "/etc/ntp.conf.sample", Mode: 0o644, Content: []byte("server pool.ntp.org\n")},
		},
	}
	if err := apk.Sign(ntpd, distro); err != nil {
		return err
	}
	if err := origin.Publish(ntpd); err != nil {
		return err
	}
	mirrors := map[string]*mirror.Mirror{}
	for i := 0; i < 3; i++ {
		host := fmt.Sprintf("https://mirror%d.example.org/", i)
		m := mirror.New(host, netsim.Europe)
		m.Sync(origin)
		mirrors[host] = m
	}
	fmt.Println("1. published ntpd-4.2.8-r0 to the original repository; 3 mirrors synced")

	// --- 2. Launch TSR and deploy the organization's policy. ---------
	platform, err := enclave.NewPlatform(keys.Shared.MustGet("quickstart-quoting"))
	if err != nil {
		return err
	}
	svc, err := tsr.New(tsr.Config{
		Platform: platform,
		TPM:      tpm.New(keys.Shared.MustGet("quickstart-host-tpm")),
		Link:     netsim.DefaultLinkModel(netsim.NewRNG(1)),
		Clock:    netsim.NewVirtualClock(netsim.RealClock{}.Now()),
		Local:    netsim.Europe,
		EPC:      enclave.DefaultCostModel(),
		Resolve: func(m policy.Mirror) (quorum.Source, tsr.PackageFetcher, error) {
			mm, ok := mirrors[m.Hostname]
			if !ok {
				return nil, nil, fmt.Errorf("unknown mirror %q", m.Hostname)
			}
			return mm, mm, nil
		},
	})
	if err != nil {
		return err
	}
	pem, err := distro.Public().MarshalPEM()
	if err != nil {
		return err
	}
	pol := policy.Policy{
		Mirrors: []policy.Mirror{
			{Hostname: "https://mirror0.example.org/", Location: "Europe"},
			{Hostname: "https://mirror1.example.org/", Location: "Europe"},
			{Hostname: "https://mirror2.example.org/", Location: "Europe"},
		},
		SignerKeys: []string{strings.TrimRight(string(pem), "\n")},
		InitConfigFiles: []policy.ConfigFile{
			{Path: osimage.PasswdPath, Content: "root:x:0:0:root:/root:/bin/ash"},
			{Path: osimage.GroupPath, Content: "root:x:0:"},
		},
	}
	repoID, pubPEM, report, err := svc.DeployPolicy(pol.Marshal())
	if err != nil {
		return err
	}
	// The OS owner verifies the attestation report before trusting the
	// returned key (Figure 7, steps 1-5).
	if err := report.Verify(platform.QuotingKey(), tsr.Measurement()); err != nil {
		return fmt.Errorf("enclave attestation failed: %w", err)
	}
	tsrPub, err := keys.ParsePEM("tsr-"+repoID, pubPEM)
	if err != nil {
		return err
	}
	fmt.Printf("2. policy deployed: repository %s, TSR key fingerprint %s (enclave verified)\n",
		repoID, tsrPub.Fingerprint())

	// --- 3. TSR refreshes: quorum read + sanitization. ----------------
	tenant, err := svc.Repo(repoID)
	if err != nil {
		return err
	}
	stats, err := tenant.Refresh()
	if err != nil {
		return err
	}
	fmt.Printf("3. refresh: quorum of %d mirrors in %v; %d sanitized, %d rejected\n",
		stats.MirrorsContacted, stats.QuorumLatency.Round(1e6), stats.Sanitized, stats.Rejected)

	// --- 4. The integrity-enforced OS installs through TSR. -----------
	img, err := osimage.New(keys.Shared.MustGet("quickstart-os-ak"), pol.InitConfigFiles)
	if err != nil {
		return err
	}
	// The monitoring system whitelists the golden image and is told to
	// trust the TSR key.
	verifier := attest.NewVerifier(img.TPM.AttestationKey(), keys.NewRing(tsrPub))
	if err := img.IMA.MeasureTree("/etc"); err != nil {
		return err
	}
	verifier.WhitelistImage(img)

	mgr := pkgmgr.New(img, tenant, keys.NewRing(tsrPub), keys.NewRing(tsrPub))
	if err := mgr.Refresh(); err != nil {
		return err
	}
	if _, err := mgr.Install("ntpd"); err != nil {
		return err
	}
	passwd, err := img.FS.ReadFile(osimage.PasswdPath)
	if err != nil {
		return err
	}
	fmt.Printf("4. installed ntpd through TSR; /etc/passwd now has %d accounts\n",
		strings.Count(string(passwd), "\n"))

	// --- 5. Remote attestation accepts the updated OS. ----------------
	result, err := verifier.Attest(img)
	if err != nil {
		return err
	}
	if !result.OK {
		return fmt.Errorf("unexpected violations: %+v", result.Violations())
	}
	fmt.Printf("5. attestation OK: %d measurements, 0 violations — the update did not break integrity\n",
		len(result.Findings))
	return nil
}
