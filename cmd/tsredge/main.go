// Command tsredge runs an untrusted edge replica in front of a TSR
// origin (cmd/tsrd). The replica needs no enclave and no keys: it
// syncs the origin's published snapshot — a full signed index on first
// contact, then deltas keyed by the index ETag — keeps a byte-budgeted
// pull-through package cache, and re-exposes the origin's signature
// headers verbatim so clients verify end-to-end. Any number of
// tsredge instances can fan out one origin's traffic; a stale or
// tampering instance is detected and routed around client-side.
//
// Usage:
//
//	tsredge -origin http://localhost:8473 -repo <id> [-addr :8474]
//	        [-sync 30s] [-cache-mb 256] [-name edge-1]
//	        [-data-dir /var/lib/tsredge] [-fsync] [-max-inflight 512]
//	        [-log-format text|json] [-debug-addr <addr>]
//
// Like the origin, the edge wraps its handler in the observability
// middleware: GET /metrics serves per-endpoint latency histograms, the
// in-flight gauge, and shed counts, and -max-inflight sheds flash
// crowd overload with 429 + Retry-After. Concurrent cold misses for
// the same package are coalesced into a single origin pull, and sync
// storms into a single delta fetch, so the edge protects the origin
// exactly when demand is most correlated.
//
// With -data-dir the package cache and the last-synced signed index
// live on disk: a restarted tsredge serves immediately from the
// persisted state and resumes DELTA sync instead of re-downloading the
// full index. Everything read back from disk is re-verified (content
// hash against the signed index) before it is served, so the data dir
// needs no trust.
//
// A client session (identical to the origin's read API):
//
//	curl localhost:8474/repos/<id>/index
//	curl -O localhost:8474/repos/<id>/packages/<name>
//	curl localhost:8474/repos/<id>/stats
package main

import (
	"context"
	crand "crypto/rand"
	"encoding/binary"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"math/rand"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"tsr/internal/edge"
	"tsr/internal/obs"
	"tsr/internal/store"
	"tsr/internal/trace"
	"tsr/internal/tsr"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "tsredge:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("tsredge", flag.ContinueOnError)
	addr := fs.String("addr", ":8474", "listen address")
	originURL := fs.String("origin", "http://localhost:8473", "TSR origin base URL")
	repoID := fs.String("repo", "", "tenant repository id to replicate (required)")
	syncEvery := fs.Duration("sync", 30*time.Second, "origin sync interval ±10% jitter (delta syncs once warm)")
	cacheMB := fs.Int64("cache-mb", 256, "pull-through package cache budget in MiB")
	name := fs.String("name", "", "edge name reported in X-Tsr-Edge (default: the listen address)")
	dataDir := fs.String("data-dir", "", "persist the package cache and last-synced index here; restarts resume warm via delta sync")
	fsyncF := fs.Bool("fsync", false, "fsync every data-dir write (with -data-dir)")
	maxInflight := fs.Int64("max-inflight", 512, "admission control: max concurrently served requests, excess sheds with 429 (0 = unlimited)")
	logFormat := fs.String("log-format", "text", "operational log format: text or json (json lines carry trace_id/span_id for joining against /debug/traces)")
	debugAddr := fs.String("debug-addr", "", "serve net/http/pprof on this address (empty disables; keep it off the public listen address)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	log, err := obs.NewLogger(os.Stderr, *logFormat, "tsredge")
	if err != nil {
		return err
	}
	if *repoID == "" {
		return errors.New("-repo is required (the tenant repository id printed by policy deployment)")
	}
	if *name == "" {
		*name = "tsredge" + *addr
	}

	origin := &tsr.Client{
		BaseURL: strings.TrimRight(*originURL, "/"),
		RepoID:  *repoID,
		// A bounded client: a black-holed origin connection must fail
		// the sync (retried next tick) instead of wedging the loop
		// forever behind an absent timeout. The shutdown context
		// additionally aborts in-flight requests on SIGINT/SIGTERM.
		HTTPClient: &http.Client{Timeout: 2 * time.Minute},
		Context:    ctx,
	}
	rep := &edge.Replica{
		RepoID:      *repoID,
		Origin:      origin,
		CacheBudget: *cacheMB << 20,
	}
	if *dataDir != "" {
		st, err := store.OpenFS(*dataDir, store.FSOptions{Budget: *cacheMB << 20, Fsync: *fsyncF})
		if err != nil {
			return err
		}
		kept, dropped := st.ScrubReport()
		log.Info("data dir opened", "path", *dataDir, "entries_kept", kept, "dropped_by_scrub", dropped)
		rep.Cache = st
		rep.PersistIndex = true
		switch err := rep.LoadState(); {
		case err == nil:
			log.Info("warm restart: serving persisted index, resuming delta sync", "etag", rep.ETag())
		case errors.Is(err, edge.ErrNoState):
			log.Info("no persisted index; starting cold")
		default:
			log.Warn("persisted index unusable; starting cold", "err", err)
		}
	}
	tracer := trace.NewTracer(trace.Config{Tier: "edge"})
	tctx := trace.NewContext(ctx, tracer)
	if err := rep.SyncCtx(tctx); err != nil {
		// The origin may be unreachable or not refreshed yet: serve
		// 503s (or the persisted snapshot) and let the sync loop catch
		// up rather than flapping.
		log.Warn("initial sync failed; retrying on the sync interval", "err", err, "every", *syncEvery)
	} else {
		log.Info("synced from origin", "repo", *repoID, "origin", *originURL, "etag", rep.ETag())
	}
	go syncLoop(tctx, rep, *syncEvery, log)
	if *debugAddr != "" {
		go servePprof(*debugAddr, log)
	}

	server := &http.Server{
		Addr:              *addr,
		Handler:           obs.New(obs.Options{MaxInflight: *maxInflight, Tracer: tracer}).Wrap(edge.Handler(map[string]*edge.Replica{*repoID: rep}, *name)),
		ReadHeaderTimeout: 10 * time.Second,
	}
	log.Info("serving", "repo", *repoID, "addr", *addr, "cache_budget_mib", *cacheMB,
		"sync_every", *syncEvery, "max_inflight", *maxInflight, "metrics", "/metrics", "traces", "/debug/traces")
	return serveUntilDone(ctx, server, log)
}

// servePprof exposes the net/http/pprof handlers on their own listen
// address, so profiling never rides the public API (and never competes
// with admission control). (cmd/tsrd carries the same helper; main
// packages cannot share code.)
func servePprof(addr string, log *slog.Logger) {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	srv := &http.Server{Addr: addr, Handler: mux, ReadHeaderTimeout: 10 * time.Second}
	log.Info("pprof listening", "addr", addr)
	if err := srv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Error("pprof server failed", "err", err)
	}
}

// syncLoop keeps the replica converging on the origin until the context
// is canceled. Warm iterations are delta syncs (or 304-style no-ops);
// failures are logged and retried on the next tick. Each interval
// carries ±10% jitter: a fleet of edges started together (a rolling
// deploy, a recovered rack) would otherwise delta-sync in lockstep and
// hit the origin as one synchronized thundering herd forever.
func syncLoop(ctx context.Context, rep *edge.Replica, every time.Duration, log *slog.Logger) {
	rng := rand.New(rand.NewSource(cryptoSeed()))
	timer := time.NewTimer(jitter(rng, every))
	defer timer.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-timer.C:
		}
		// The loop context is traced (see run), so periodic syncs land
		// in /debug/traces as edge.sync trees like POST /sync ones do.
		if err := rep.SyncCtx(ctx); err != nil {
			log.Error("sync failed", "err", err)
		}
		timer.Reset(jitter(rng, every))
	}
}

// cryptoSeed derives a jitter-RNG seed from crypto/rand. A wall-clock
// seed (the previous implementation) gives every replica in a
// simultaneously deployed fleet a near-identical seed — and detrand
// flags it as the classic unreproducible-failure pattern; entropy from
// the kernel keeps the phases independent instead.
func cryptoSeed() int64 {
	var b [8]byte
	if _, err := crand.Read(b[:]); err != nil {
		// No kernel entropy: fall back to something per-process. The
		// jitter degrades (possible fleet alignment), nothing breaks.
		return int64(os.Getpid())
	}
	return int64(binary.LittleEndian.Uint64(b[:]))
}

// jitter spreads an interval uniformly over [0.9d, 1.1d].
func jitter(rng *rand.Rand, d time.Duration) time.Duration {
	return d + time.Duration((rng.Float64()*0.2-0.1)*float64(d))
}

// serveUntilDone runs the server until it fails or the context is
// canceled (SIGINT/SIGTERM), then drains in-flight requests through
// http.Server.Shutdown with a deadline.
func serveUntilDone(ctx context.Context, server *http.Server, log *slog.Logger) error {
	errCh := make(chan error, 1)
	go func() { errCh <- server.ListenAndServe() }()
	select {
	case err := <-errCh:
		if errors.Is(err, http.ErrServerClosed) {
			return nil
		}
		return err
	case <-ctx.Done():
		log.Info("signal received, draining connections")
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := server.Shutdown(shutdownCtx); err != nil {
			return fmt.Errorf("shutdown: %w", err)
		}
		log.Info("stopped")
		return nil
	}
}
