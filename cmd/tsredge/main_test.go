package main

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"tsr/internal/apk"
	"tsr/internal/chaos"
	"tsr/internal/edge"
	"tsr/internal/experiments"
	"tsr/internal/index"
	"tsr/internal/keys"
	"tsr/internal/obs"
	"tsr/internal/tsr"
)

// TestReplicateOverHTTP wires the full daemon topology in-process:
// origin service behind an httptest server, a replica syncing through
// tsr.Client (exactly what run() builds), and a client reading the
// replica through edge.Handler. The second origin refresh must reach
// the replica as a delta.
func TestReplicateOverHTTP(t *testing.T) {
	w, err := experiments.NewWorld(experiments.Config{Scale: 0.003, Seed: 5}, nil, false)
	if err != nil {
		t.Fatal(err)
	}
	originSrv := httptest.NewServer(tsr.Handler(w.Service))
	defer originSrv.Close()

	origin := &tsr.Client{BaseURL: originSrv.URL, RepoID: w.Tenant.ID, HTTPClient: originSrv.Client()}
	rep := &edge.Replica{RepoID: w.Tenant.ID, Origin: origin, CacheBudget: 64 << 20}
	if err := rep.Sync(); err != nil {
		t.Fatal(err)
	}
	if s := rep.Stats(); s.FullSyncs != 1 {
		t.Fatalf("stats = %+v, want one full sync", s)
	}

	// A new origin generation: publish, mirror-sync, refresh.
	p := &apk.Package{Name: "zzz-edge", Version: "1.0-r0",
		Files: []apk.File{{Path: "/usr/bin/zzz-edge", Mode: 0o755, Content: []byte("edge")}}}
	if err := apk.Sign(p, w.Distro); err != nil {
		t.Fatal(err)
	}
	if err := w.Repo.Publish(p); err != nil {
		t.Fatal(err)
	}
	for _, m := range w.Mirrors {
		m.Sync(w.Repo)
	}
	if _, err := w.Tenant.Refresh(); err != nil {
		t.Fatal(err)
	}
	if err := rep.Sync(); err != nil {
		t.Fatal(err)
	}
	if s := rep.Stats(); s.DeltaSyncs != 1 {
		t.Fatalf("stats = %+v, want one delta sync over HTTP", s)
	}

	// Clients read the edge like an origin, end-to-end verified.
	edgeSrv := httptest.NewServer(edge.Handler(map[string]*edge.Replica{w.Tenant.ID: rep}, "edge-test"))
	defer edgeSrv.Close()
	client := &tsr.Client{BaseURL: edgeSrv.URL, RepoID: w.Tenant.ID, HTTPClient: edgeSrv.Client()}
	signed, err := client.FetchIndex()
	if err != nil {
		t.Fatal(err)
	}
	ix, err := signed.Verify(keys.NewRing(w.Tenant.PublicKey()))
	if err != nil {
		t.Fatalf("edge-served index does not verify: %v", err)
	}
	if _, err := ix.Lookup("zzz-edge"); err != nil {
		t.Fatal("delta-synced package missing from edge index")
	}
	if _, err := client.FetchPackage("zzz-edge"); err != nil {
		t.Fatal(err)
	}

	// Wire-efficiency parity with tsrd on the same daemon stack: the
	// index negotiates gzip without touching the signature headers, the
	// chunk manifest is served under the package's strong ETag, and a
	// Range read comes back 206 with the FULL representation's ETag.
	raw := &http.Client{Transport: &http.Transport{DisableCompression: true}}
	get := func(path string, hdr map[string]string) *http.Response {
		req, err := http.NewRequest(http.MethodGet, edgeSrv.URL+path, nil)
		if err != nil {
			t.Fatal(err)
		}
		for k, v := range hdr {
			req.Header.Set(k, v)
		}
		resp, err := raw.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp
	}
	idResp := get("/repos/"+w.Tenant.ID+"/index", nil)
	gzResp := get("/repos/"+w.Tenant.ID+"/index", map[string]string{"Accept-Encoding": "gzip"})
	if gzResp.Header.Get("Content-Encoding") != "gzip" {
		t.Fatalf("edge index Content-Encoding = %q, want gzip", gzResp.Header.Get("Content-Encoding"))
	}
	for _, h := range []string{"ETag", "X-Tsr-Key-Name", "X-Tsr-Signature"} {
		if idResp.Header.Get(h) != gzResp.Header.Get(h) {
			t.Fatalf("%s differs between identity and gzip transfer", h)
		}
	}
	pkgPath := "/repos/" + w.Tenant.ID + "/packages/zzz-edge"
	full := get(pkgPath, nil)
	if full.StatusCode != http.StatusOK || full.Header.Get("ETag") == "" {
		t.Fatalf("package status = %d etag = %q", full.StatusCode, full.Header.Get("ETag"))
	}
	if mResp := get(pkgPath+"/chunks", nil); mResp.StatusCode != http.StatusOK ||
		mResp.Header.Get("ETag") != full.Header.Get("ETag") {
		t.Fatalf("chunks status = %d etag = %q, want 200 under the package ETag",
			mResp.StatusCode, mResp.Header.Get("ETag"))
	}
	rResp := get(pkgPath, map[string]string{"Range": "bytes=0-9", "If-Range": full.Header.Get("ETag")})
	if rResp.StatusCode != http.StatusPartialContent || rResp.Header.Get("ETag") != full.Header.Get("ETag") {
		t.Fatalf("range status = %d etag = %q, want 206 under the full representation's ETag",
			rResp.StatusCode, rResp.Header.Get("ETag"))
	}
}

// TestEdgeETagBodyUnderConcurrentSync hammers the exact serving stack
// run() builds — obs.New(Options{MaxInflight}).Wrap(edge.Handler(...))
// — with concurrent index and package reads while the replica syncs
// new origin generations underneath. The chaos checker holds every 200
// package response to the strong-ETag invariant (ETag == sha256 of the
// body actually served): even when a sync publishes a new generation
// mid-request, a response must never pair one generation's tag with
// another's bytes. After the churn quiesces, a final sync must leave
// every published package served and verified.
func TestEdgeETagBodyUnderConcurrentSync(t *testing.T) {
	w, err := experiments.NewWorld(experiments.Config{Scale: 0.003, Seed: 5}, nil, false)
	if err != nil {
		t.Fatal(err)
	}
	originSrv := httptest.NewServer(tsr.Handler(w.Service))
	defer originSrv.Close()
	ring := keys.NewRing(w.Tenant.PublicKey())
	origin := &tsr.Client{BaseURL: originSrv.URL, RepoID: w.Tenant.ID, HTTPClient: originSrv.Client()}
	rep := &edge.Replica{RepoID: w.Tenant.ID, Origin: origin, CacheBudget: 64 << 20, TrustRing: ring}
	if err := rep.Sync(); err != nil {
		t.Fatal(err)
	}

	const maxInflight = 8
	gate := obs.New(obs.Options{MaxInflight: maxInflight})
	handler := gate.Wrap(edge.Handler(map[string]*edge.Replica{w.Tenant.ID: rep}, "edge-soak"))
	checker := chaos.NewChecker(ring)

	const readers, iterations = 4, 12
	var served atomic.Int64
	var wg, pubWG sync.WaitGroup
	for c := 0; c < readers; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			actor := fmt.Sprintf("reader-%d", c)
			for i := 0; i < iterations; i++ {
				rec := httptest.NewRecorder()
				handler.ServeHTTP(rec, httptest.NewRequest("GET", "/repos/"+w.Tenant.ID+"/index", nil))
				if rec.Code != http.StatusOK {
					continue // availability under churn, not a violation
				}
				ix, err := index.Decode(rec.Body.Bytes())
				if err != nil {
					t.Errorf("%s: edge served undecodable index: %v", actor, err)
					return
				}
				for _, e := range ix.Entries {
					rec := httptest.NewRecorder()
					handler.ServeHTTP(rec, httptest.NewRequest("GET",
						"/repos/"+w.Tenant.ID+"/packages/"+e.Name, nil))
					checker.HTTPResponse(actor, rec.Code,
						rec.Header().Get("ETag"), rec.Header().Get("Retry-After"), rec.Body.Bytes())
					if rec.Code == http.StatusOK {
						served.Add(1)
					}
				}
			}
		}(c)
	}
	// Publisher: three new origin generations land and sync mid-read.
	pubWG.Add(1)
	go func() {
		defer pubWG.Done()
		for gen := 0; gen < 3; gen++ {
			p := &apk.Package{Name: fmt.Sprintf("zzz-soak-%d", gen), Version: "1.0-r0",
				Files: []apk.File{{Path: "/usr/bin/zzz-soak", Mode: 0o755,
					Content: []byte(fmt.Sprintf("gen-%d", gen))}}}
			if err := apk.Sign(p, w.Distro); err != nil {
				t.Error(err)
				return
			}
			if err := w.Repo.Publish(p); err != nil {
				t.Error(err)
				return
			}
			for _, m := range w.Mirrors {
				m.Sync(w.Repo)
			}
			if _, err := w.Tenant.Refresh(); err != nil {
				t.Error(err)
				return
			}
			if err := rep.Sync(); err != nil {
				t.Errorf("mid-read sync: %v", err)
				return
			}
		}
	}()
	wg.Wait()
	pubWG.Wait()

	checker.AdmissionSnapshot("edge", gate.Snapshot())
	if v := checker.Violations(); len(v) != 0 {
		t.Fatalf("invariant violations: %v", v)
	}
	if served.Load() == 0 {
		t.Fatal("no package responses served during churn")
	}

	// Quiesce: one more sync, then every published generation's package
	// must be present and verified through the same wrapped stack.
	if err := rep.Sync(); err != nil {
		t.Fatal(err)
	}
	rec := httptest.NewRecorder()
	handler.ServeHTTP(rec, httptest.NewRequest("GET", "/repos/"+w.Tenant.ID+"/index", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("post-quiesce index status = %d", rec.Code)
	}
	ix, err := index.Decode(rec.Body.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	for gen := 0; gen < 3; gen++ {
		name := fmt.Sprintf("zzz-soak-%d", gen)
		if _, err := ix.Lookup(name); err != nil {
			t.Fatalf("post-quiesce index missing %s", name)
		}
		rec := httptest.NewRecorder()
		handler.ServeHTTP(rec, httptest.NewRequest("GET", "/repos/"+w.Tenant.ID+"/packages/"+name, nil))
		checker.HTTPResponse("quiesce", rec.Code,
			rec.Header().Get("ETag"), rec.Header().Get("Retry-After"), rec.Body.Bytes())
		if rec.Code != http.StatusOK {
			t.Fatalf("post-quiesce fetch %s status = %d", name, rec.Code)
		}
	}
	if v := checker.Violations(); len(v) != 0 {
		t.Fatalf("post-quiesce violations: %v", v)
	}
}

func TestRunRequiresRepo(t *testing.T) {
	if err := run(context.Background(), nil); err == nil {
		t.Fatal("want error when -repo is missing")
	}
	if err := run(context.Background(), []string{"-nope"}); err == nil {
		t.Fatal("want flag error")
	}
}

// TestRunShutsDownGracefully: cancellation drains the server and stops
// the sync loop; run returns nil.
func TestRunShutsDownGracefully(t *testing.T) {
	w, err := experiments.NewWorld(experiments.Config{Scale: 0.003, Seed: 5}, nil, false)
	if err != nil {
		t.Fatal(err)
	}
	originSrv := httptest.NewServer(tsr.Handler(w.Service))
	defer originSrv.Close()

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		done <- run(ctx, []string{
			"-addr", "127.0.0.1:0",
			"-origin", originSrv.URL,
			"-repo", w.Tenant.ID,
			"-sync", "1h",
		})
	}()
	time.Sleep(50 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("graceful shutdown returned %v", err)
		}
	case <-time.After(120 * time.Second):
		t.Fatal("run did not return after context cancellation")
	}
}
