package main

import (
	"context"
	"net/http/httptest"
	"testing"
	"time"

	"tsr/internal/apk"
	"tsr/internal/edge"
	"tsr/internal/experiments"
	"tsr/internal/keys"
	"tsr/internal/tsr"
)

// TestReplicateOverHTTP wires the full daemon topology in-process:
// origin service behind an httptest server, a replica syncing through
// tsr.Client (exactly what run() builds), and a client reading the
// replica through edge.Handler. The second origin refresh must reach
// the replica as a delta.
func TestReplicateOverHTTP(t *testing.T) {
	w, err := experiments.NewWorld(experiments.Config{Scale: 0.003, Seed: 5}, nil, false)
	if err != nil {
		t.Fatal(err)
	}
	originSrv := httptest.NewServer(tsr.Handler(w.Service))
	defer originSrv.Close()

	origin := &tsr.Client{BaseURL: originSrv.URL, RepoID: w.Tenant.ID, HTTPClient: originSrv.Client()}
	rep := &edge.Replica{RepoID: w.Tenant.ID, Origin: origin, CacheBudget: 64 << 20}
	if err := rep.Sync(); err != nil {
		t.Fatal(err)
	}
	if s := rep.Stats(); s.FullSyncs != 1 {
		t.Fatalf("stats = %+v, want one full sync", s)
	}

	// A new origin generation: publish, mirror-sync, refresh.
	p := &apk.Package{Name: "zzz-edge", Version: "1.0-r0",
		Files: []apk.File{{Path: "/usr/bin/zzz-edge", Mode: 0o755, Content: []byte("edge")}}}
	if err := apk.Sign(p, w.Distro); err != nil {
		t.Fatal(err)
	}
	if err := w.Repo.Publish(p); err != nil {
		t.Fatal(err)
	}
	for _, m := range w.Mirrors {
		m.Sync(w.Repo)
	}
	if _, err := w.Tenant.Refresh(); err != nil {
		t.Fatal(err)
	}
	if err := rep.Sync(); err != nil {
		t.Fatal(err)
	}
	if s := rep.Stats(); s.DeltaSyncs != 1 {
		t.Fatalf("stats = %+v, want one delta sync over HTTP", s)
	}

	// Clients read the edge like an origin, end-to-end verified.
	edgeSrv := httptest.NewServer(edge.Handler(map[string]*edge.Replica{w.Tenant.ID: rep}, "edge-test"))
	defer edgeSrv.Close()
	client := &tsr.Client{BaseURL: edgeSrv.URL, RepoID: w.Tenant.ID, HTTPClient: edgeSrv.Client()}
	signed, err := client.FetchIndex()
	if err != nil {
		t.Fatal(err)
	}
	ix, err := signed.Verify(keys.NewRing(w.Tenant.PublicKey()))
	if err != nil {
		t.Fatalf("edge-served index does not verify: %v", err)
	}
	if _, err := ix.Lookup("zzz-edge"); err != nil {
		t.Fatal("delta-synced package missing from edge index")
	}
	if _, err := client.FetchPackage("zzz-edge"); err != nil {
		t.Fatal(err)
	}
}

func TestRunRequiresRepo(t *testing.T) {
	if err := run(context.Background(), nil); err == nil {
		t.Fatal("want error when -repo is missing")
	}
	if err := run(context.Background(), []string{"-nope"}); err == nil {
		t.Fatal("want flag error")
	}
}

// TestRunShutsDownGracefully: cancellation drains the server and stops
// the sync loop; run returns nil.
func TestRunShutsDownGracefully(t *testing.T) {
	w, err := experiments.NewWorld(experiments.Config{Scale: 0.003, Seed: 5}, nil, false)
	if err != nil {
		t.Fatal(err)
	}
	originSrv := httptest.NewServer(tsr.Handler(w.Service))
	defer originSrv.Close()

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		done <- run(ctx, []string{
			"-addr", "127.0.0.1:0",
			"-origin", originSrv.URL,
			"-repo", w.Tenant.ID,
			"-sync", "1h",
		})
	}()
	time.Sleep(50 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("graceful shutdown returned %v", err)
		}
	case <-time.After(120 * time.Second):
		t.Fatal("run did not return after context cancellation")
	}
}
