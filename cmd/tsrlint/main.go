// Command tsrlint runs the repo's static-analysis suite
// (internal/analysis): repo-specific analyzers that mechanically
// enforce the invariants the system depends on — edges never sign,
// handler errors route through statusFor, published snapshots are
// frozen, the serving path is lock-free, deterministic packages stay
// deterministic, and outgoing HTTP carries contexts and timeouts.
// docs/LINT.md documents each analyzer and the //lint:allow escape
// hatch.
//
// Two modes:
//
//	go run ./cmd/tsrlint ./...          # standalone, whole-tree
//	go vet -vettool=$(which tsrlint) ./...  # driven by the go tool
//
// The standalone mode loads packages itself (via `go list -export`)
// and exits 1 if any diagnostic survives the allow filter. The vet
// mode speaks the cmd/go vettool protocol: -V=full for build
// caching, -flags for flag discovery, and a JSON .cfg file per
// compilation unit.
//
// Flags (standalone mode):
//
//	-checks noresign,detrand   run a subset of analyzers
package main

import (
	"crypto/sha256"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"strings"

	"tsr/internal/analysis"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("tsrlint: ")

	fs := flag.NewFlagSet("tsrlint", flag.ExitOnError)
	fs.Var(versionFlag{}, "V", "print version and exit (the go vet -vettool protocol)")
	printFlags := fs.Bool("flags", false, "print analyzer flags in JSON (the go vet -vettool protocol)")
	checks := fs.String("checks", "", "comma-separated analyzer subset (default: all)")
	if err := fs.Parse(os.Args[1:]); err != nil {
		log.Fatal(err)
	}
	if *printFlags {
		// No analyzer-specific flags: report none to cmd/go.
		fmt.Println("[]")
		return
	}

	analyzers := analysis.All()
	if *checks != "" {
		var ok bool
		if analyzers, ok = analysis.ByName(strings.Split(*checks, ",")); !ok {
			log.Fatalf("unknown analyzer in -checks=%s (known: %s)", *checks, knownNames())
		}
	}

	args := fs.Args()
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		runVetUnit(args[0], analyzers) // invoked by go vet
		return
	}
	if len(args) == 0 {
		args = []string{"./..."}
	}
	runStandalone(args, analyzers)
}

func knownNames() string {
	var names []string
	for _, a := range analysis.All() {
		names = append(names, a.Name)
	}
	return strings.Join(names, ",")
}

// runStandalone loads the patterns from the current directory and
// reports every diagnostic, exiting 1 if there are any.
func runStandalone(patterns []string, analyzers []*analysis.Analyzer) {
	units, err := analysis.Load(".", patterns...)
	if err != nil {
		log.Fatal(err)
	}
	exit := 0
	for _, u := range units {
		diags, err := analysis.RunUnit(u, analyzers)
		if err != nil {
			log.Fatal(err)
		}
		for _, d := range diags {
			fmt.Println(d)
			exit = 1
		}
	}
	os.Exit(exit)
}

// versionFlag implements the -V=full protocol required by "go vet":
// print a line identifying this executable's contents so the build
// system can cache vet results keyed by tool identity.
type versionFlag struct{}

func (versionFlag) IsBoolFlag() bool { return true }
func (versionFlag) String() string   { return "" }
func (versionFlag) Set(s string) error {
	if s != "full" {
		log.Fatalf("unsupported flag value: -V=%s (use -V=full)", s)
	}
	prog, err := os.Executable()
	if err != nil {
		log.Fatal(err)
	}
	f, err := os.Open(prog)
	if err != nil {
		log.Fatal(err)
	}
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		log.Fatal(err)
	}
	f.Close()
	fmt.Printf("%s version devel comments-go-here buildID=%02x\n", prog, string(h.Sum(nil)))
	os.Exit(0)
	return nil
}
