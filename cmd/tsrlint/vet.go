package main

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"log"
	"os"

	"tsr/internal/analysis"
)

// vetConfig is the JSON compilation-unit description cmd/go hands a
// vettool (one .cfg file per package). The field set is cmd/go's
// protocol; only the fields tsrlint needs are decoded.
type vetConfig struct {
	ID                        string
	Compiler                  string
	ImportPath                string
	GoFiles                   []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// runVetUnit analyzes the single compilation unit described by the
// .cfg file, printing diagnostics to stderr and exiting nonzero when
// any survive — the contract "go vet" expects.
func runVetUnit(cfgFile string, analyzers []*analysis.Analyzer) {
	data, err := os.ReadFile(cfgFile)
	if err != nil {
		log.Fatal(err)
	}
	cfg := new(vetConfig)
	if err := json.Unmarshal(data, cfg); err != nil {
		log.Fatalf("cannot decode vet config %s: %v", cfgFile, err)
	}

	// tsrlint exports no facts, but cmd/go expects the vetx output file
	// to exist; write the (empty) facts file up front.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
			log.Fatal(err)
		}
	}
	if cfg.VetxOnly {
		return
	}

	fset := token.NewFileSet()
	files := make([]*ast.File, 0, len(cfg.GoFiles))
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return
			}
			log.Fatal(err)
		}
		files = append(files, f)
	}

	exportFile := func(path string) (string, error) {
		file, ok := cfg.PackageFile[path]
		if !ok {
			return "", fmt.Errorf("no package file for %q", path)
		}
		return file, nil
	}
	info := analysis.NewInfo()
	conf := types.Config{
		Importer: analysis.ExportDataImporter(fset, exportFile, cfg.ImportMap),
		Sizes:    types.SizesFor("gc", "amd64"),
	}
	pkg, err := conf.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return
		}
		log.Fatalf("type-checking %s: %v", cfg.ImportPath, err)
	}

	unit := &analysis.Unit{Path: cfg.ImportPath, Fset: fset, Files: files, Pkg: pkg, TypesInfo: info}
	diags, err := analysis.RunUnit(unit, analyzers)
	if err != nil {
		log.Fatal(err)
	}
	for _, d := range diags {
		fmt.Fprintf(os.Stderr, "%s: %s (%s)\n", d.Pos, d.Message, d.Analyzer)
	}
	if len(diags) > 0 {
		os.Exit(2)
	}
}
