package main

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"tsr/internal/tsr"
)

func TestBuildServiceAndServe(t *testing.T) {
	svc, examplePolicy, err := buildService(0.003, 9, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(examplePolicy, "mirrors:") || !strings.Contains(examplePolicy, "BEGIN PUBLIC KEY") {
		t.Fatalf("example policy:\n%s", examplePolicy)
	}
	srv := httptest.NewServer(tsr.Handler(svc))
	defer srv.Close()

	// The printed example policy works as-is against the server.
	resp, err := srv.Client().Post(srv.URL+"/policies", "application/yaml", strings.NewReader(examplePolicy))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("deploy status = %d", resp.StatusCode)
	}
	var deployed struct {
		RepositoryID string `json:"repository_id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&deployed); err != nil {
		t.Fatal(err)
	}
	resp2, err := srv.Client().Post(srv.URL+"/repos/"+deployed.RepositoryID+"/refresh", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("refresh status = %d", resp2.StatusCode)
	}
	resp3, err := srv.Client().Get(srv.URL + "/repos/" + deployed.RepositoryID + "/index")
	if err != nil {
		t.Fatal(err)
	}
	resp3.Body.Close()
	if resp3.StatusCode != http.StatusOK {
		t.Fatalf("index status = %d", resp3.StatusCode)
	}
}

func TestRunBadFlag(t *testing.T) {
	if err := run(context.Background(), []string{"-nope"}); err == nil {
		t.Fatal("want flag error")
	}
}

// TestRunShutsDownGracefully: a canceled context (the SIGINT/SIGTERM
// path) makes run drain the server and return nil instead of leaking
// the listener and the auto-refresh goroutine.
func TestRunShutsDownGracefully(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		done <- run(ctx, []string{"-addr", "127.0.0.1:0", "-scale", "0.003", "-auto-refresh", "1h"})
	}()
	// Let the service build and the listener start, then deliver the
	// shutdown signal. (If cancel lands before ListenAndServe, Shutdown
	// still wins: the server refuses to start and run returns nil.)
	time.Sleep(50 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("graceful shutdown returned %v", err)
		}
	case <-time.After(120 * time.Second):
		t.Fatal("run did not return after context cancellation")
	}
}
