package main

import (
	"bytes"
	"compress/gzip"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"tsr/internal/chaos"
	"tsr/internal/index"
	"tsr/internal/obs"
	"tsr/internal/tsr"
)

// testLogger discards output: the helpers under test log operational
// chatter the tests do not assert on.
func testLogger() *slog.Logger {
	log, err := obs.NewLogger(io.Discard, "text", "tsrd-test")
	if err != nil {
		panic(err)
	}
	return log
}

func TestBuildServiceAndServe(t *testing.T) {
	deps, err := openHost("", false, "", testLogger())
	if err != nil {
		t.Fatal(err)
	}
	svc, examplePolicy, err := buildService(0.003, 9, svcLimits{workers: 4}, deps, testLogger())
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(examplePolicy, "mirrors:") || !strings.Contains(examplePolicy, "BEGIN PUBLIC KEY") {
		t.Fatalf("example policy:\n%s", examplePolicy)
	}
	srv := httptest.NewServer(tsr.Handler(svc))
	defer srv.Close()

	// The printed example policy works as-is against the server.
	resp, err := srv.Client().Post(srv.URL+"/policies", "application/yaml", strings.NewReader(examplePolicy))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("deploy status = %d", resp.StatusCode)
	}
	var deployed struct {
		RepositoryID string `json:"repository_id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&deployed); err != nil {
		t.Fatal(err)
	}
	resp2, err := srv.Client().Post(srv.URL+"/repos/"+deployed.RepositoryID+"/refresh", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("refresh status = %d", resp2.StatusCode)
	}
	resp3, err := srv.Client().Get(srv.URL + "/repos/" + deployed.RepositoryID + "/index")
	if err != nil {
		t.Fatal(err)
	}
	resp3.Body.Close()
	if resp3.StatusCode != http.StatusOK {
		t.Fatalf("index status = %d", resp3.StatusCode)
	}
}

// TestAdmissionShedContract storms the exact middleware stack run()
// builds — obs.New(Options{MaxInflight}).Wrap(tsr.Handler(svc)) — and
// holds it to the chaos checker's serving invariants: every 200
// package response pairs its strong ETag with exactly the body it
// serves, every 429 carries a Retry-After hint, and the in-flight peak
// never exceeds the advertised -max-inflight bound. A small service-
// time floor under the gate (the same device the flash-crowd
// experiment uses) makes the bursts genuinely overlap, so the gate has
// something to shed.
func TestAdmissionShedContract(t *testing.T) {
	deps, err := openHost("", false, "", testLogger())
	if err != nil {
		t.Fatal(err)
	}
	svc, examplePolicy, err := buildService(0.003, 9, svcLimits{workers: 4}, deps, testLogger())
	if err != nil {
		t.Fatal(err)
	}
	api := tsr.Handler(svc)
	do := func(method, path, body string) *httptest.ResponseRecorder {
		rec := httptest.NewRecorder()
		api.ServeHTTP(rec, httptest.NewRequest(method, path, strings.NewReader(body)))
		return rec
	}
	rec := do("POST", "/policies", examplePolicy)
	if rec.Code != http.StatusOK {
		t.Fatalf("deploy status = %d: %s", rec.Code, rec.Body)
	}
	var deployed struct {
		RepositoryID string `json:"repository_id"`
	}
	if err := json.NewDecoder(rec.Body).Decode(&deployed); err != nil {
		t.Fatal(err)
	}
	if rec := do("POST", "/repos/"+deployed.RepositoryID+"/refresh", ""); rec.Code != http.StatusOK {
		t.Fatalf("refresh status = %d", rec.Code)
	}
	rec = do("GET", "/repos/"+deployed.RepositoryID+"/index", "")
	if rec.Code != http.StatusOK {
		t.Fatalf("index status = %d", rec.Code)
	}
	ix, err := index.Decode(rec.Body.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if len(ix.Entries) == 0 {
		t.Fatal("no packages to storm")
	}

	const maxInflight = 4
	gate := obs.New(obs.Options{MaxInflight: maxInflight})
	wrapped := gate.Wrap(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		time.Sleep(2 * time.Millisecond) // service-time floor: make bursts overlap
		api.ServeHTTP(w, r)
	}))

	checker := chaos.NewChecker(nil)
	var served, shed atomic.Int64
	var wg sync.WaitGroup
	for round := 0; round < 3; round++ {
		for c := 0; c < 4*maxInflight; c++ {
			wg.Add(1)
			go func(c int) {
				defer wg.Done()
				name := ix.Entries[c%len(ix.Entries)].Name
				rec := httptest.NewRecorder()
				wrapped.ServeHTTP(rec, httptest.NewRequest("GET",
					"/repos/"+deployed.RepositoryID+"/packages/"+name, nil))
				checker.HTTPResponse("tsrd", rec.Code,
					rec.Header().Get("ETag"), rec.Header().Get("Retry-After"), rec.Body.Bytes())
				switch rec.Code {
				case http.StatusOK:
					served.Add(1)
				case http.StatusTooManyRequests:
					shed.Add(1)
				default:
					t.Errorf("unexpected status %d for %s", rec.Code, name)
				}
			}(c)
		}
		wg.Wait()
	}

	snap := gate.Snapshot()
	checker.AdmissionSnapshot("tsrd", snap)
	if v := checker.Violations(); len(v) != 0 {
		t.Fatalf("invariant violations: %v", v)
	}
	if served.Load() == 0 {
		t.Fatal("storm served nothing")
	}
	if shed.Load() == 0 || snap.ShedTotal == 0 {
		t.Fatalf("4x overload shed nothing (served=%d shed=%d snapshot=%d)",
			served.Load(), shed.Load(), snap.ShedTotal)
	}
	if snap.PeakInflight > maxInflight {
		t.Fatalf("peak inflight %d > bound %d", snap.PeakInflight, maxInflight)
	}
}

func TestRunBadFlag(t *testing.T) {
	if err := run(context.Background(), []string{"-nope"}); err == nil {
		t.Fatal("want flag error")
	}
}

// TestRunShutsDownGracefully: a canceled context (the SIGINT/SIGTERM
// path) makes run drain the server and return nil instead of leaking
// the listener and the auto-refresh goroutine.
func TestRunShutsDownGracefully(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		// Seed 9 like the rest of the file: the default seed 1 draws a
		// workload whose race-instrumented build alone exceeds the 120s
		// deadline below, turning this into a build-speed test.
		done <- run(ctx, []string{"-addr", "127.0.0.1:0", "-scale", "0.003", "-seed", "9", "-auto-refresh", "1h"})
	}()
	// Let the service build and the listener start, then deliver the
	// shutdown signal. (If cancel lands before ListenAndServe, Shutdown
	// still wins: the server refuses to start and run returns nil.)
	time.Sleep(50 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("graceful shutdown returned %v", err)
		}
	case <-time.After(120 * time.Second):
		t.Fatal("run did not return after context cancellation")
	}
}

// TestWireServingSmoke covers the wire-efficiency surface through the
// exact handler run() serves: gzip-negotiated index transfer that
// changes neither the canonical signed bytes nor the signature
// headers, the chunk-manifest endpoint rooted in the signed entry, and
// verified Range serving under the full representation's strong ETag
// (with If-None-Match taking precedence over Range).
func TestWireServingSmoke(t *testing.T) {
	deps, err := openHost("", false, "", testLogger())
	if err != nil {
		t.Fatal(err)
	}
	svc, examplePolicy, err := buildService(0.003, 9, svcLimits{workers: 4}, deps, testLogger())
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(tsr.Handler(svc))
	defer srv.Close()
	// DisableCompression: assert on the raw wire form, not the
	// transport's transparently decoded one.
	raw := &http.Client{Transport: &http.Transport{DisableCompression: true}}

	resp, err := raw.Post(srv.URL+"/policies", "application/yaml", strings.NewReader(examplePolicy))
	if err != nil {
		t.Fatal(err)
	}
	var deployed struct {
		RepositoryID string `json:"repository_id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&deployed); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp, err = raw.Post(srv.URL+"/repos/"+deployed.RepositoryID+"/refresh", "", nil); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("refresh status = %d", resp.StatusCode)
	}

	get := func(path string, hdr map[string]string) (*http.Response, []byte) {
		req, err := http.NewRequest(http.MethodGet, srv.URL+path, nil)
		if err != nil {
			t.Fatal(err)
		}
		for k, v := range hdr {
			req.Header.Set(k, v)
		}
		resp, err := raw.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return resp, body
	}

	// Gzip-negotiated index: same ETag and signature headers, smaller
	// wire body that decompresses to the identity (canonical) bytes.
	idResp, identity := get("/repos/"+deployed.RepositoryID+"/index", nil)
	gzResp, zipped := get("/repos/"+deployed.RepositoryID+"/index", map[string]string{"Accept-Encoding": "gzip"})
	if gzResp.Header.Get("Content-Encoding") != "gzip" {
		t.Fatalf("Content-Encoding = %q, want gzip", gzResp.Header.Get("Content-Encoding"))
	}
	if len(zipped) >= len(identity) {
		t.Fatalf("gzip index %d B >= identity %d B", len(zipped), len(identity))
	}
	for _, h := range []string{"ETag", "X-Tsr-Key-Name", "X-Tsr-Signature"} {
		if idResp.Header.Get(h) != gzResp.Header.Get(h) {
			t.Fatalf("%s differs between identity and gzip transfer", h)
		}
	}
	zr, err := gzip.NewReader(bytes.NewReader(zipped))
	if err != nil {
		t.Fatal(err)
	}
	unzipped, err := io.ReadAll(zr)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(unzipped, identity) {
		t.Fatal("gzip index does not decompress to the canonical signed bytes")
	}

	ix, err := index.Decode(identity)
	if err != nil {
		t.Fatal(err)
	}
	if len(ix.Entries) == 0 {
		t.Fatal("empty index")
	}
	entry := ix.Entries[0]
	pkgPath := "/repos/" + deployed.RepositoryID + "/packages/" + entry.Name

	// Full representation: strong ETag == sha256 of the body.
	fullResp, full := get(pkgPath, nil)
	if fullResp.StatusCode != http.StatusOK {
		t.Fatalf("package status = %d", fullResp.StatusCode)
	}
	sum := sha256.Sum256(full)
	etag := fullResp.Header.Get("ETag")
	if want := `"` + hex.EncodeToString(sum[:]) + `"`; etag != want {
		t.Fatalf("ETag = %s, body hashes to %s", etag, want)
	}

	// Chunk manifest: rooted in the signed entry.
	mResp, mBody := get(pkgPath+"/chunks", nil)
	if mResp.StatusCode != http.StatusOK {
		t.Fatalf("chunks status = %d", mResp.StatusCode)
	}
	if mResp.Header.Get("ETag") != etag {
		t.Fatalf("manifest ETag %s != package ETag %s", mResp.Header.Get("ETag"), etag)
	}
	name, m, err := tsr.DecodeChunkManifest(mBody)
	if err != nil {
		t.Fatal(err)
	}
	if name != entry.Name || m.PackageHash != entry.Hash || m.TotalSize != entry.Size || len(m.Chunks) == 0 {
		t.Fatalf("manifest not rooted in signed entry: name=%q chunks=%d", name, len(m.Chunks))
	}

	// Range over verified bytes: 206 carries the FULL representation's
	// ETag and exactly the requested slice.
	end := int64(len(full))/2 + 1
	rResp, part := get(pkgPath, map[string]string{
		"Range":    fmt.Sprintf("bytes=2-%d", end),
		"If-Range": etag,
	})
	if rResp.StatusCode != http.StatusPartialContent {
		t.Fatalf("range status = %d, want 206", rResp.StatusCode)
	}
	if rResp.Header.Get("ETag") != etag {
		t.Fatalf("206 ETag = %s, want full representation's %s", rResp.Header.Get("ETag"), etag)
	}
	if want := fmt.Sprintf("bytes 2-%d/%d", end, len(full)); rResp.Header.Get("Content-Range") != want {
		t.Fatalf("Content-Range = %q, want %q", rResp.Header.Get("Content-Range"), want)
	}
	if !bytes.Equal(part, full[2:end+1]) {
		t.Fatal("206 body is not the requested slice of the full representation")
	}

	// If-None-Match takes precedence over Range: revalidation wins.
	nmResp, _ := get(pkgPath, map[string]string{"Range": "bytes=0-9", "If-None-Match": etag})
	if nmResp.StatusCode != http.StatusNotModified {
		t.Fatalf("If-None-Match + Range status = %d, want 304", nmResp.StatusCode)
	}
}

// TestWarmRestartSmoke is the build-and-restart smoke CI runs: bring up
// the full daemon stack on a data dir, deploy + refresh, "kill" it,
// bring up a second instance over the same dir, and assert the index
// is served from the warm snapshot without any re-sanitization.
func TestWarmRestartSmoke(t *testing.T) {
	tmp := t.TempDir()
	dataDir := tmp + "/data"
	boot := func() (*tsr.Service, func() []byte) {
		deps, err := openHost(dataDir, false, "", testLogger())
		if err != nil {
			t.Fatal(err)
		}
		svc, examplePolicy, err := buildService(0.003, 9, svcLimits{workers: 4}, deps, testLogger())
		if err != nil {
			t.Fatal(err)
		}
		if _, err := svc.RestoreAll(); err != nil {
			t.Fatal(err)
		}
		return svc, func() []byte { return []byte(examplePolicy) }
	}

	// First life: deploy, refresh, record what clients see.
	svc1, policy1 := boot()
	srv1 := httptest.NewServer(tsr.Handler(svc1))
	resp, err := srv1.Client().Post(srv1.URL+"/policies", "application/yaml", strings.NewReader(string(policy1())))
	if err != nil {
		t.Fatal(err)
	}
	var deployed struct {
		RepositoryID string `json:"repository_id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&deployed); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if deployed.RepositoryID == "" {
		t.Fatal("no repository id")
	}
	resp, err = srv1.Client().Post(srv1.URL+"/repos/"+deployed.RepositoryID+"/refresh", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("refresh status = %d", resp.StatusCode)
	}
	resp, err = srv1.Client().Get(srv1.URL + "/repos/" + deployed.RepositoryID + "/index")
	if err != nil {
		t.Fatal(err)
	}
	wantETag := resp.Header.Get("ETag")
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || wantETag == "" {
		t.Fatalf("index status = %d etag = %q", resp.StatusCode, wantETag)
	}
	srv1.Close() // "kill" the daemon

	// Second life: same data dir, fresh process state.
	svc2, _ := boot()
	srv2 := httptest.NewServer(tsr.Handler(svc2))
	defer srv2.Close()
	resp, err = srv2.Client().Get(srv2.URL + "/repos/" + deployed.RepositoryID + "/index")
	if err != nil {
		t.Fatal(err)
	}
	gotETag := resp.Header.Get("ETag")
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("restarted index status = %d (repository not restored?)", resp.StatusCode)
	}
	if gotETag != wantETag {
		t.Fatalf("restarted index etag = %s, want %s", gotETag, wantETag)
	}
	// Warm: the restarted service sanitized nothing to serve that.
	resp, err = srv2.Client().Get(srv2.URL + "/repos/" + deployed.RepositoryID + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	var stats struct {
		Sanitized int64 `json:"sanitized"`
		CacheHits int64 `json:"cache_hits"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if stats.Sanitized != 0 {
		t.Fatalf("restart sanitized %d packages, want 0 (warm)", stats.Sanitized)
	}
	// And the first refresh after restart is all sancache hits.
	resp, err = srv2.Client().Post(srv2.URL+"/repos/"+deployed.RepositoryID+"/refresh", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	var rstats struct {
		Sanitized int `json:"sanitized"`
		CacheHits int `json:"cache_hits"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&rstats); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if rstats.Sanitized != 0 || rstats.CacheHits == 0 {
		t.Fatalf("post-restart refresh sanitized=%d cacheHits=%d, want all cache hits", rstats.Sanitized, rstats.CacheHits)
	}
}
