package main

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"tsr/internal/tsr"
)

func TestBuildServiceAndServe(t *testing.T) {
	svc, examplePolicy, err := buildService(0.003, 9, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(examplePolicy, "mirrors:") || !strings.Contains(examplePolicy, "BEGIN PUBLIC KEY") {
		t.Fatalf("example policy:\n%s", examplePolicy)
	}
	srv := httptest.NewServer(tsr.Handler(svc))
	defer srv.Close()

	// The printed example policy works as-is against the server.
	resp, err := srv.Client().Post(srv.URL+"/policies", "application/yaml", strings.NewReader(examplePolicy))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("deploy status = %d", resp.StatusCode)
	}
	var deployed struct {
		RepositoryID string `json:"repository_id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&deployed); err != nil {
		t.Fatal(err)
	}
	resp2, err := srv.Client().Post(srv.URL+"/repos/"+deployed.RepositoryID+"/refresh", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("refresh status = %d", resp2.StatusCode)
	}
	resp3, err := srv.Client().Get(srv.URL + "/repos/" + deployed.RepositoryID + "/index")
	if err != nil {
		t.Fatal(err)
	}
	resp3.Body.Close()
	if resp3.StatusCode != http.StatusOK {
		t.Fatalf("index status = %d", resp3.StatusCode)
	}
}

func TestRunBadFlag(t *testing.T) {
	if err := run([]string{"-nope"}); err == nil {
		t.Fatal("want flag error")
	}
}
