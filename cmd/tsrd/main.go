// Command tsrd runs a TSR server over a simulated deployment: it
// generates a synthetic Alpine-like repository, stands up mirrors,
// launches the TSR service in the simulated enclave, and serves the
// REST API of §5.2.
//
// Usage:
//
//	tsrd [-addr :8473] [-scale 0.02] [-seed 1] [-workers 4] [-auto-refresh 0]
//	     [-refresh-workers 16] [-sched-max-active 8]
//	     [-data-dir /var/lib/tsrd] [-fsync] [-host-state <path>]
//	     [-max-inflight 256] [-log-format text|json] [-debug-addr <addr>]
//
// Refresh and ingest cycles across every deployed repository run under
// one global scheduler (internal/sched): -refresh-workers bounds the
// total pipeline concurrency of the box (the per-repo -workers value
// only caps one repository's batch size within its leased share), and
// -sched-max-active bounds concurrently admitted cycles. Auto-refresh
// deadlines are staggered and jittered per repository so a fleet of
// tenants never fires as a thundering herd.
//
// The serving path is wrapped in the observability middleware
// (internal/obs): per-endpoint latency histograms, the in-flight
// gauge, and shed counts are exposed at GET /metrics, and
// -max-inflight bounds concurrently served requests — excess flash
// crowd load is shed with 429 + Retry-After instead of queueing
// unboundedly behind a saturated handler.
//
// With -data-dir the untrusted cache tier — original and sanitized
// packages, sealed sancache metadata, sealed repository checkpoints —
// lives on disk, and a restarted tsrd warm-boots: deployed
// repositories come back with their ids, policies, and signing keys,
// serve their previous signed index immediately, and the next refresh
// re-enters every unchanged package from the sealed sanitization cache
// without re-sanitizing. Nothing read from the data dir is trusted:
// blobs are hash-verified against signed indexes, metadata is sealed
// to the enclave identity, and a rolled-back data dir is rejected via
// the TPM monotonic counter (§5.5).
//
// The -host-state file models the trusted HARDWARE that survives a
// restart — the CPU's fused sealing root and the TPM's NV counter
// bank (plus, simulation bootstrap, the synthetic distro signing key).
// It defaults to <data-dir>.hoststate, deliberately OUTSIDE the data
// dir: the §5.5 adversary can snapshot and roll back the disk cache
// but cannot roll back hardware. Restart with the same -scale/-seed so
// the regenerated upstream world matches the persisted state.
//
// A client session:
//
//	curl -X POST --data-binary @policy.yaml localhost:8473/policies
//	curl -X POST localhost:8473/repos/<id>/refresh
//	curl localhost:8473/repos/<id>/index
//	curl -O localhost:8473/repos/<id>/packages/<name>
package main

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strconv"
	"sync"
	"syscall"
	"time"

	"tsr/internal/apk"
	"tsr/internal/enclave"
	"tsr/internal/keys"
	"tsr/internal/mirror"
	"tsr/internal/netsim"
	"tsr/internal/obs"
	"tsr/internal/policy"
	"tsr/internal/quorum"
	"tsr/internal/repo"
	"tsr/internal/sched"
	"tsr/internal/store"
	"tsr/internal/tpm"
	"tsr/internal/trace"
	"tsr/internal/tsr"
	"tsr/internal/workload"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "tsrd:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("tsrd", flag.ContinueOnError)
	addr := fs.String("addr", ":8473", "listen address")
	scale := fs.Float64("scale", 0.02, "synthetic repository scale")
	seed := fs.Int64("seed", 1, "workload seed")
	workers := fs.Int("workers", 4, "per-repository refresh batch cap (1 = the paper's sequential prototype)")
	refreshWorkers := fs.Int("refresh-workers", 16, "global refresh/ingest worker pool shared by every repository (0 = unbounded)")
	schedMaxActive := fs.Int("sched-max-active", 8, "max concurrently admitted refresh/ingest cycles across all repositories (0 = unbounded)")
	autoRefresh := fs.Duration("auto-refresh", 0, "refresh every deployed repository at this interval (0 disables); reads keep serving the previous snapshot while cycles run")
	dataDir := fs.String("data-dir", "", "durable untrusted cache + sealed checkpoints; restarts warm-boot deployed repositories")
	fsyncF := fs.Bool("fsync", false, "fsync every data-dir write (with -data-dir)")
	hostStatePath := fs.String("host-state", "", "trusted host hardware state (seal root, TPM counters); default <data-dir>.hoststate, keep OUTSIDE -data-dir")
	maxInflight := fs.Int64("max-inflight", 256, "admission control: max concurrently served requests, excess sheds with 429 (0 = unlimited)")
	logFormat := fs.String("log-format", "text", "operational log format: text or json (json lines carry trace_id/span_id for joining against /debug/traces)")
	debugAddr := fs.String("debug-addr", "", "serve net/http/pprof on this address (empty disables; keep it off the public listen address)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	log, err := obs.NewLogger(os.Stderr, *logFormat, "tsrd")
	if err != nil {
		return err
	}
	deps, err := openHost(*dataDir, *fsyncF, *hostStatePath, log)
	if err != nil {
		return err
	}
	svc, examplePolicy, err := buildService(*scale, *seed,
		svcLimits{workers: *workers, refreshWorkers: *refreshWorkers, schedMaxActive: *schedMaxActive}, deps, log)
	if err != nil {
		return err
	}
	if deps.persist {
		restored, err := svc.RestoreAll()
		if err != nil {
			return fmt.Errorf("restoring %s: %w", *dataDir, err)
		}
		for _, r := range restored {
			switch {
			case r.Warm:
				log.Info("restored repository warm (serving previous signed index, no re-sanitization)", "repo", r.ID)
			case r.RolledBack():
				log.Error("checkpoint REFUSED, counter mismatch — a rolled-back data dir, or a crash mid-checkpoint; repository is cold until the next refresh", "repo", r.ID, "err", r.Err)
			default:
				log.Warn("repository restored cold", "repo", r.ID, "err", r.Err)
			}
		}
		if len(restored) == 0 {
			log.Info("data dir holds no repositories; starting fresh")
		}
	}
	// The example policy is operator I/O, not telemetry: in text mode
	// it must stay a copy-pasteable YAML block (the documented workflow
	// extracts it from the log between the header and "listening"), so
	// only json mode folds it into the record (jq -r .policy).
	if *logFormat == "json" {
		log.Info("example policy for this deployment", "policy", examplePolicy)
	} else {
		fmt.Fprintf(os.Stderr, "tsrd: example policy for this deployment:\n%stsrd: end of example policy\n", examplePolicy)
	}
	tracer := trace.NewTracer(trace.Config{Tier: "origin"})
	if *autoRefresh > 0 {
		go autoRefreshLoop(ctx, svc, *autoRefresh, tracer, log)
		log.Info("auto-refresh enabled", "every", *autoRefresh)
	}
	if *debugAddr != "" {
		go servePprof(*debugAddr, log)
	}
	server := &http.Server{
		Addr:              *addr,
		Handler:           obs.New(obs.Options{MaxInflight: *maxInflight, Tracer: tracer, Sched: svc.Scheduler()}).Wrap(tsr.Handler(svc)),
		ReadHeaderTimeout: 10 * time.Second,
	}
	log.Info("listening", "addr", *addr, "max_inflight", *maxInflight,
		"refresh_workers", *refreshWorkers, "sched_max_active", *schedMaxActive,
		"metrics", "/metrics", "traces", "/debug/traces")
	return serveUntilDone(ctx, server, log)
}

// servePprof exposes the net/http/pprof handlers on their own listen
// address, so profiling never rides the public API (and never competes
// with admission control).
func servePprof(addr string, log *slog.Logger) {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	srv := &http.Server{Addr: addr, Handler: mux, ReadHeaderTimeout: 10 * time.Second}
	log.Info("pprof listening", "addr", addr)
	if err := srv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Error("pprof server failed", "err", err)
	}
}

// serveUntilDone runs the server until it fails or the context is
// canceled (SIGINT/SIGTERM), then drains in-flight requests through
// http.Server.Shutdown with a deadline. (cmd/tsredge carries the same
// helper; main packages cannot share code.)
func serveUntilDone(ctx context.Context, server *http.Server, log *slog.Logger) error {
	errCh := make(chan error, 1)
	go func() { errCh <- server.ListenAndServe() }()
	select {
	case err := <-errCh:
		if errors.Is(err, http.ErrServerClosed) {
			return nil
		}
		return err
	case <-ctx.Done():
		log.Info("signal received, draining connections")
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := server.Shutdown(shutdownCtx); err != nil {
			return fmt.Errorf("shutdown: %w", err)
		}
		log.Info("stopped")
		return nil
	}
}

// autoRefreshLoop keeps every deployed repository fresh until the
// context is canceled. Each repository gets its own deadline series
//
//	start + Stagger(id, every) + round*every + Jitter(id, round, every/10)
//
// so a fleet of tenants spreads across the interval instead of firing
// as a thundering herd, and the spread is deterministic across
// restarts. Due repositories refresh concurrently on the Background
// band of the service's global scheduler — the scheduler, not this
// loop, bounds how many actually run — with a per-repo in-flight guard
// so a slow cycle is never stacked on itself. Repositories deployed at
// runtime are picked up on the next tick. The snapshot read path keeps
// serving the previous published state during each cycle, so the
// daemon stays fully responsive to package managers throughout.
func autoRefreshLoop(ctx context.Context, svc *tsr.Service, every time.Duration, tracer *trace.Tracer, log *slog.Logger) {
	type repoState struct {
		round uint64
		next  time.Time
		busy  bool
	}
	var mu sync.Mutex
	states := map[string]*repoState{}
	start := time.Now()
	deadline := func(id string, round uint64) time.Time {
		d := sched.Stagger(id, every) + time.Duration(round)*every
		if round > 0 {
			d += sched.Jitter(id, round, every/10)
		}
		return start.Add(d)
	}
	// Fine-grained ticker: deadlines land anywhere in the interval, so
	// the loop polls well below `every` (bounded to [50ms, 1s]).
	tick := min(max(every/20, 50*time.Millisecond), time.Second)
	ticker := time.NewTicker(tick)
	defer ticker.Stop()
	// Each cycle runs under the daemon's tracer, so auto-refreshes show
	// up in /debug/traces with per-stage child spans exactly like
	// operator-triggered POST /refresh cycles do.
	tctx := trace.NewContext(ctx, tracer)
	for {
		var now time.Time
		select {
		case <-ctx.Done():
			return
		case now = <-ticker.C:
		}
		ids := svc.RepoIDs()
		live := make(map[string]bool, len(ids))
		for _, id := range ids {
			live[id] = true
		}
		mu.Lock()
		for id := range states {
			if !live[id] {
				delete(states, id) // undeployed since last tick
			}
		}
		due := make([]string, 0, len(ids))
		for _, id := range ids {
			st := states[id]
			if st == nil {
				st = &repoState{next: deadline(id, 0)}
				states[id] = st
			}
			if !st.busy && !now.Before(st.next) {
				st.busy = true
				due = append(due, id)
			}
		}
		mu.Unlock()
		for _, id := range due {
			go func(id string) {
				defer func() {
					mu.Lock()
					if st := states[id]; st != nil {
						st.busy = false
						// Skip rounds a long cycle (or a stalled box) ran
						// past, so recovery is one refresh, not a burst.
						for {
							st.round++
							if next := deadline(id, st.round); next.After(time.Now()) {
								st.next = next
								break
							}
						}
					}
					mu.Unlock()
				}()
				repo, err := svc.Repo(id)
				if err != nil {
					return // undeployed between listing and lookup
				}
				if _, err := repo.RefreshBackgroundCtx(tctx); err != nil {
					log.Error("auto-refresh failed", "repo", id, "err", err)
				}
			}(id)
		}
	}
}

// hostDeps are the host-side pieces a service is built on. The memory
// profile (no -data-dir) generates everything fresh; the durable
// profile reopens the data dir and the host-state file so sealed blobs
// unseal and the TPM counters carry over — modeling the same physical
// machine rebooting.
type hostDeps struct {
	store    tsr.Store
	tpm      *tpm.TPM
	platform *enclave.Platform
	distro   *keys.Pair
	persist  bool
}

// hostState is the JSON body of the -host-state file: the hardware
// that survives restarts. SealRoot is the CPU's fused sealing secret,
// TPMCounters the NV counter bank; DistroKeyPEM bootstraps the
// simulated upstream world so a restart regenerates identically-signed
// packages. None of it may live in the untrusted data dir — rolling
// the data dir back must NOT roll these back, or rollback detection
// would be self-defeating.
type hostState struct {
	SealRoot    string            `json:"seal_root"`
	TPMCounters map[string]uint64 `json:"tpm_counters"`
	DistroPEM   string            `json:"distro_key_pem"`
}

// openHost builds hostDeps. Without a data dir everything is
// in-memory and ephemeral.
func openHost(dataDir string, fsync bool, hostStatePath string, log *slog.Logger) (hostDeps, error) {
	if dataDir == "" {
		distro, err := keys.Generate("alpine-distro")
		if err != nil {
			return hostDeps{}, err
		}
		platform, err := enclave.NewPlatform(keys.Shared.MustGet("tsrd-quoting"))
		if err != nil {
			return hostDeps{}, err
		}
		return hostDeps{
			store:    tsr.NewMemStore(),
			tpm:      tpm.New(keys.Shared.MustGet("tsrd-tpm-ak")),
			platform: platform,
			distro:   distro,
		}, nil
	}
	if hostStatePath == "" {
		hostStatePath = dataDir + ".hoststate"
	}
	hs, err := loadOrInitHostState(hostStatePath)
	if err != nil {
		return hostDeps{}, err
	}
	var sealRoot [32]byte
	rootBytes, err := hex.DecodeString(hs.SealRoot)
	if err != nil || len(rootBytes) != 32 {
		return hostDeps{}, fmt.Errorf("host state %s: bad seal_root", hostStatePath)
	}
	copy(sealRoot[:], rootBytes)
	platform := enclave.NewPlatformWithSealRoot(keys.Shared.MustGet("tsrd-quoting"), sealRoot)
	distro, err := keys.ParsePrivatePEM("alpine-distro", []byte(hs.DistroPEM))
	if err != nil {
		return hostDeps{}, fmt.Errorf("host state %s: %w", hostStatePath, err)
	}
	hostTPM := tpm.New(keys.Shared.MustGet("tsrd-tpm-ak"))
	hostTPM.RestoreCounters(decodeCounters(hs.TPMCounters))
	// Persist the NV bank on every counter bump, like hardware would.
	var saveMu sync.Mutex
	hostTPM.OnIncrement = func(uint32, uint64) {
		saveMu.Lock()
		defer saveMu.Unlock()
		hs.TPMCounters = encodeCounters(hostTPM.Counters())
		if err := saveHostState(hostStatePath, hs); err != nil {
			log.Error("persisting host state failed", "path", hostStatePath, "err", err)
		}
	}
	st, err := store.OpenFS(dataDir, store.FSOptions{Fsync: fsync})
	if err != nil {
		return hostDeps{}, err
	}
	kept, dropped := st.ScrubReport()
	log.Info("data dir opened", "path", dataDir, "entries_kept", kept, "dropped_by_scrub", dropped)
	return hostDeps{store: st, tpm: hostTPM, platform: platform, distro: distro, persist: true}, nil
}

// loadOrInitHostState reads the host-state file, creating it (fresh
// seal root, zero counters, fresh distro key) on first boot.
func loadOrInitHostState(path string) (*hostState, error) {
	raw, err := os.ReadFile(path)
	if err == nil {
		hs := &hostState{}
		if err := json.Unmarshal(raw, hs); err != nil {
			return nil, fmt.Errorf("host state %s: %w", path, err)
		}
		return hs, nil
	}
	if !os.IsNotExist(err) {
		return nil, err
	}
	var root [32]byte
	if _, err := rand.Read(root[:]); err != nil {
		return nil, err
	}
	distro, err := keys.Generate("alpine-distro")
	if err != nil {
		return nil, err
	}
	pem, err := distro.MarshalPrivatePEM()
	if err != nil {
		return nil, err
	}
	hs := &hostState{
		SealRoot:    hex.EncodeToString(root[:]),
		TPMCounters: map[string]uint64{},
		DistroPEM:   string(pem),
	}
	if err := saveHostState(path, hs); err != nil {
		return nil, err
	}
	return hs, nil
}

// saveHostState writes the file atomically (temp + rename).
func saveHostState(path string, hs *hostState) error {
	raw, err := json.MarshalIndent(hs, "", "  ")
	if err != nil {
		return err
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, raw, 0o600); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

func encodeCounters(bank map[uint32]uint64) map[string]uint64 {
	out := make(map[string]uint64, len(bank))
	for id, v := range bank {
		out[strconv.FormatUint(uint64(id), 10)] = v
	}
	return out
}

func decodeCounters(bank map[string]uint64) map[uint32]uint64 {
	out := make(map[uint32]uint64, len(bank))
	for id, v := range bank {
		n, err := strconv.ParseUint(id, 10, 32)
		if err != nil {
			continue
		}
		out[uint32(n)] = v
	}
	return out
}

// svcLimits groups the concurrency knobs a service is built with: the
// per-repository batch cap and the global scheduler bounds.
type svcLimits struct {
	workers        int // per-repo refresh batch cap
	refreshWorkers int // global worker pool (0 = unbounded)
	schedMaxActive int // max concurrently admitted cycles (0 = unbounded)
}

// buildService generates the synthetic deployment (repository, mirrors,
// TSR service) on the given host and returns the service plus a
// ready-to-use policy text.
func buildService(scaleV float64, seedV int64, lim svcLimits, deps hostDeps, log *slog.Logger) (*tsr.Service, string, error) {
	scale, seed := &scaleV, &seedV
	log.Info("generating synthetic repository", "scale", *scale)
	origin := repo.New("alpine", deps.distro)
	gen := workload.New(workload.Config{Seed: *seed, Scale: *scale})
	for _, spec := range gen.Specs() {
		p, err := gen.Build(spec)
		if err != nil {
			return nil, "", err
		}
		if err := apk.Sign(p, deps.distro); err != nil {
			return nil, "", err
		}
		if err := origin.Publish(p); err != nil {
			return nil, "", err
		}
	}
	log.Info("published synthetic packages", "count", len(gen.Specs()))

	mirrors := map[string]*mirror.Mirror{}
	for i, c := range []netsim.Continent{netsim.Europe, netsim.Europe, netsim.NorthAmerica} {
		host := fmt.Sprintf("https://mirror%d/", i)
		m := mirror.New(host, c)
		m.Sync(origin)
		mirrors[host] = m
	}

	svc, err := tsr.New(tsr.Config{
		Platform:       deps.platform,
		TPM:            deps.tpm,
		Clock:          netsim.RealClock{},
		Link:           netsim.DefaultLinkModel(netsim.NewRNG(*seed)),
		Local:          netsim.Europe,
		Store:          deps.store,
		AutoPersist:    deps.persist,
		EPC:            enclave.DefaultCostModel(),
		Workers:        lim.workers,
		RefreshWorkers: lim.refreshWorkers,
		SchedMaxActive: lim.schedMaxActive,
		Resolve: func(m policy.Mirror) (quorum.Source, tsr.PackageFetcher, error) {
			mm, ok := mirrors[m.Hostname]
			if !ok {
				return nil, nil, fmt.Errorf("unknown mirror %q (tsrd serves %d simulated mirrors: https://mirror0..2/)", m.Hostname, len(mirrors))
			}
			return mm, mm, nil
		},
	})
	if err != nil {
		return nil, "", err
	}

	// A ready-to-use policy for the simulated mirrors.
	pem, err := deps.distro.Public().MarshalPEM()
	if err != nil {
		return nil, "", err
	}
	example := policy.Policy{
		Mirrors: []policy.Mirror{
			{Hostname: "https://mirror0/", Location: "Europe"},
			{Hostname: "https://mirror1/", Location: "Europe"},
			{Hostname: "https://mirror2/", Location: "North America"},
		},
		SignerKeys: []string{string(pem)},
	}
	return svc, string(example.Marshal()), nil
}
