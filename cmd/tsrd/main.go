// Command tsrd runs a TSR server over a simulated deployment: it
// generates a synthetic Alpine-like repository, stands up mirrors,
// launches the TSR service in the simulated enclave, and serves the
// REST API of §5.2.
//
// Usage:
//
//	tsrd [-addr :8473] [-scale 0.02] [-seed 1] [-workers 4] [-auto-refresh 0]
//
// A client session:
//
//	curl -X POST --data-binary @policy.yaml localhost:8473/policies
//	curl -X POST localhost:8473/repos/<id>/refresh
//	curl localhost:8473/repos/<id>/index
//	curl -O localhost:8473/repos/<id>/packages/<name>
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"tsr/internal/apk"
	"tsr/internal/enclave"
	"tsr/internal/keys"
	"tsr/internal/mirror"
	"tsr/internal/netsim"
	"tsr/internal/policy"
	"tsr/internal/quorum"
	"tsr/internal/repo"
	"tsr/internal/tpm"
	"tsr/internal/tsr"
	"tsr/internal/workload"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "tsrd:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("tsrd", flag.ContinueOnError)
	addr := fs.String("addr", ":8473", "listen address")
	scale := fs.Float64("scale", 0.02, "synthetic repository scale")
	seed := fs.Int64("seed", 1, "workload seed")
	workers := fs.Int("workers", 4, "refresh pipeline concurrency (1 = the paper's sequential prototype)")
	autoRefresh := fs.Duration("auto-refresh", 0, "refresh every deployed repository at this interval (0 disables); reads keep serving the previous snapshot while cycles run")
	if err := fs.Parse(args); err != nil {
		return err
	}
	svc, examplePolicy, err := buildService(*scale, *seed, *workers)
	if err != nil {
		return err
	}
	fmt.Println("tsrd: example policy for this deployment:")
	fmt.Println(examplePolicy)
	if *autoRefresh > 0 {
		go autoRefreshLoop(ctx, svc, *autoRefresh)
		fmt.Printf("tsrd: auto-refreshing every %s\n", *autoRefresh)
	}
	server := &http.Server{
		Addr:              *addr,
		Handler:           tsr.Handler(svc),
		ReadHeaderTimeout: 10 * time.Second,
	}
	fmt.Printf("tsrd: listening on %s\n", *addr)
	return serveUntilDone(ctx, server, "tsrd")
}

// serveUntilDone runs the server until it fails or the context is
// canceled (SIGINT/SIGTERM), then drains in-flight requests through
// http.Server.Shutdown with a deadline. (cmd/tsredge carries the same
// helper; main packages cannot share code.)
func serveUntilDone(ctx context.Context, server *http.Server, name string) error {
	errCh := make(chan error, 1)
	go func() { errCh <- server.ListenAndServe() }()
	select {
	case err := <-errCh:
		if errors.Is(err, http.ErrServerClosed) {
			return nil
		}
		return err
	case <-ctx.Done():
		fmt.Printf("%s: signal received, draining connections...\n", name)
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := server.Shutdown(shutdownCtx); err != nil {
			return fmt.Errorf("%s: shutdown: %w", name, err)
		}
		fmt.Printf("%s: stopped\n", name)
		return nil
	}
}

// autoRefreshLoop periodically refreshes every deployed repository
// until the context is canceled. The snapshot read path keeps serving
// the previous published state during each cycle, so the daemon stays
// fully responsive to package managers while the trusted pipeline runs
// in the background.
func autoRefreshLoop(ctx context.Context, svc *tsr.Service, every time.Duration) {
	ticker := time.NewTicker(every)
	defer ticker.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-ticker.C:
		}
		for _, id := range svc.RepoIDs() {
			repo, err := svc.Repo(id)
			if err != nil {
				continue // deleted between listing and lookup
			}
			if _, err := repo.Refresh(); err != nil {
				fmt.Fprintf(os.Stderr, "tsrd: auto-refresh %s: %v\n", id, err)
			}
		}
	}
}

// buildService generates the synthetic deployment (repository, mirrors,
// TSR service) and returns the service plus a ready-to-use policy text.
func buildService(scaleV float64, seedV int64, workers int) (*tsr.Service, string, error) {
	scale, seed := &scaleV, &seedV
	fmt.Printf("tsrd: generating synthetic repository (scale %.2f)...\n", *scale)
	distro, err := keys.Generate("alpine-distro")
	if err != nil {
		return nil, "", err
	}
	origin := repo.New("alpine", distro)
	gen := workload.New(workload.Config{Seed: *seed, Scale: *scale})
	for _, spec := range gen.Specs() {
		p, err := gen.Build(spec)
		if err != nil {
			return nil, "", err
		}
		if err := apk.Sign(p, distro); err != nil {
			return nil, "", err
		}
		if err := origin.Publish(p); err != nil {
			return nil, "", err
		}
	}
	fmt.Printf("tsrd: published %d packages\n", len(gen.Specs()))

	mirrors := map[string]*mirror.Mirror{}
	for i, c := range []netsim.Continent{netsim.Europe, netsim.Europe, netsim.NorthAmerica} {
		host := fmt.Sprintf("https://mirror%d/", i)
		m := mirror.New(host, c)
		m.Sync(origin)
		mirrors[host] = m
	}

	platform, err := enclave.NewPlatform(keys.Shared.MustGet("tsrd-quoting"))
	if err != nil {
		return nil, "", err
	}
	svc, err := tsr.New(tsr.Config{
		Platform: platform,
		TPM:      tpm.New(keys.Shared.MustGet("tsrd-tpm-ak")),
		Clock:    netsim.RealClock{},
		Link:     netsim.DefaultLinkModel(netsim.NewRNG(*seed)),
		Local:    netsim.Europe,
		Store:    tsr.NewMemStore(),
		EPC:      enclave.DefaultCostModel(),
		Workers:  workers,
		Resolve: func(m policy.Mirror) (quorum.Source, tsr.PackageFetcher, error) {
			mm, ok := mirrors[m.Hostname]
			if !ok {
				return nil, nil, fmt.Errorf("unknown mirror %q (tsrd serves %d simulated mirrors: https://mirror0..2/)", m.Hostname, len(mirrors))
			}
			return mm, mm, nil
		},
	})
	if err != nil {
		return nil, "", err
	}

	// A ready-to-use policy for the simulated mirrors.
	pem, err := distro.Public().MarshalPEM()
	if err != nil {
		return nil, "", err
	}
	example := policy.Policy{
		Mirrors: []policy.Mirror{
			{Hostname: "https://mirror0/", Location: "Europe"},
			{Hostname: "https://mirror1/", Location: "Europe"},
			{Hostname: "https://mirror2/", Location: "North America"},
		},
		SignerKeys: []string{string(pem)},
	}
	return svc, string(example.Marshal()), nil
}
