package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunWritesRepository(t *testing.T) {
	dir := t.TempDir()
	if err := run([]string{"-out", dir, "-scale", "0.003", "-seed", "5"}); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var apks, index, sig, key int
	for _, e := range entries {
		switch {
		case strings.HasSuffix(e.Name(), ".apk"):
			apks++
		case e.Name() == "APKINDEX":
			index++
		case e.Name() == "APKINDEX.sig":
			sig++
		case e.Name() == "signing-key.pub.pem":
			key++
		}
	}
	if apks == 0 || index != 1 || sig != 1 || key != 1 {
		t.Fatalf("dir contents: %d apks, %d index, %d sig, %d key", apks, index, sig, key)
	}
	// The index is non-empty text.
	raw, err := os.ReadFile(filepath.Join(dir, "APKINDEX"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(raw), "origin = alpine") {
		t.Fatalf("index = %q", raw[:60])
	}
}

func TestRunSingleRepo(t *testing.T) {
	dir := t.TempDir()
	if err := run([]string{"-out", dir, "-scale", "0.003", "-repo", "main"}); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), "community-") {
			t.Fatalf("community package %s written despite -repo main", e.Name())
		}
	}
}

func TestRunErrors(t *testing.T) {
	if err := run([]string{}); err == nil {
		t.Error("missing -out: want error")
	}
	dir := t.TempDir()
	if err := run([]string{"-out", dir, "-scale", "0.003", "-repo", "nonexistent"}); err == nil {
		t.Error("no matching packages: want error")
	}
}

func TestRunDebFormat(t *testing.T) {
	dir := t.TempDir()
	if err := run([]string{"-out", dir, "-scale", "0.003", "-format", "deb"}); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var debs int
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".deb") {
			debs++
			raw, err := os.ReadFile(filepath.Join(dir, e.Name()))
			if err != nil {
				t.Fatal(err)
			}
			if !strings.HasPrefix(string(raw), "!<arch>\n") {
				t.Fatalf("%s is not an ar archive", e.Name())
			}
		}
	}
	if debs == 0 {
		t.Fatal("no .deb files written")
	}
}

func TestRunBadFormat(t *testing.T) {
	if err := run([]string{"-out", t.TempDir(), "-format", "rpm"}); err == nil {
		t.Fatal("want error for unsupported format")
	}
}
