// Command mkrepo materializes the synthetic Alpine-like repository to a
// directory on disk: one .apk file per package plus the signed APKINDEX,
// for inspection or for feeding external tooling.
//
// Usage:
//
//	mkrepo -out /tmp/repo [-scale 0.01] [-seed 1] [-repo main|community|all]
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"tsr/internal/apk"
	"tsr/internal/deb"
	"tsr/internal/index"
	"tsr/internal/keys"
	"tsr/internal/repo"
	"tsr/internal/workload"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "mkrepo:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("mkrepo", flag.ContinueOnError)
	out := fs.String("out", "", "output directory (required)")
	scale := fs.Float64("scale", 0.01, "population scale")
	seed := fs.Int64("seed", 1, "workload seed")
	which := fs.String("repo", "all", "main, community, or all")
	format := fs.String("format", "apk", "package format: apk or deb")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *out == "" {
		return fmt.Errorf("-out is required")
	}
	if *format != "apk" && *format != "deb" {
		return fmt.Errorf("-format must be apk or deb")
	}
	if err := os.MkdirAll(*out, 0o755); err != nil {
		return err
	}

	signer, err := keys.Generate("mkrepo-distro")
	if err != nil {
		return err
	}
	r := repo.New("alpine", signer)
	gen := workload.New(workload.Config{Seed: *seed, Scale: *scale})

	var written int
	var total int64
	for _, spec := range gen.Specs() {
		if *which != "all" && spec.Repo != *which {
			continue
		}
		p, err := gen.Build(spec)
		if err != nil {
			return err
		}
		var raw []byte
		if *format == "deb" {
			if err := deb.Sign(p, signer); err != nil {
				return err
			}
			raw, err = deb.Encode(p)
		} else {
			if err := apk.Sign(p, signer); err != nil {
				return err
			}
			raw, err = apk.Encode(p)
		}
		if err != nil {
			return err
		}
		name := fmt.Sprintf("%s-%s.%s", p.Name, p.Version, *format)
		if err := os.WriteFile(filepath.Join(*out, name), raw, 0o644); err != nil {
			return err
		}
		if err := r.PublishRaw(p.Name, p.Version, p.Depends, raw); err != nil {
			return err
		}
		written++
		total += int64(len(raw))
	}
	signed := r.SignedIndex()
	if signed == nil {
		return fmt.Errorf("no packages matched -repo %q", *which)
	}
	if err := os.WriteFile(filepath.Join(*out, "APKINDEX"), signed.Raw, 0o644); err != nil {
		return err
	}
	if err := os.WriteFile(filepath.Join(*out, "APKINDEX.sig"), signed.Sig, 0o644); err != nil {
		return err
	}
	pem, err := signer.Public().MarshalPEM()
	if err != nil {
		return err
	}
	if err := os.WriteFile(filepath.Join(*out, "signing-key.pub.pem"), pem, 0o644); err != nil {
		return err
	}
	ix, err := index.Decode(signed.Raw)
	if err != nil {
		return err
	}
	fmt.Printf("mkrepo: wrote %d packages (%.1f MB) and APKINDEX (seq %d) to %s\n",
		written, float64(total)/1e6, ix.Sequence, *out)
	return nil
}
