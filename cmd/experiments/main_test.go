package main

import (
	"os"
	"testing"
)

func TestRunList(t *testing.T) {
	if err := run([]string{"-list"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunSingleExperiment(t *testing.T) {
	if err := run([]string{"-run", "table1", "-scale", "0.01"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if err := run([]string{"-run", "nope"}); err == nil {
		t.Fatal("want error for unknown experiment")
	}
}

func TestRunBadFlag(t *testing.T) {
	if err := run([]string{"-definitely-not-a-flag"}); err == nil {
		t.Fatal("want flag parse error")
	}
}

// TestRunFleetSoakEmitsBench is the CLI path the CI soak-smoke job
// uses: fleet-soak at tiny scale with -bench-dir must leave
// BENCH_fleet_soak.json behind (and exit nonzero on any invariant
// violation, which run surfaces as an error).
func TestRunFleetSoakEmitsBench(t *testing.T) {
	dir := t.TempDir()
	if err := run([]string{"-run", "fleet-soak", "-scale", "0.004", "-seed", "3", "-bench-dir", dir}); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(dir + "/BENCH_fleet_soak.json"); err != nil {
		t.Fatalf("BENCH file not emitted: %v", err)
	}
}
