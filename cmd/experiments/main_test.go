package main

import "testing"

func TestRunList(t *testing.T) {
	if err := run([]string{"-list"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunSingleExperiment(t *testing.T) {
	if err := run([]string{"-run", "table1", "-scale", "0.01"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if err := run([]string{"-run", "nope"}); err == nil {
		t.Fatal("want error for unknown experiment")
	}
}

func TestRunBadFlag(t *testing.T) {
	if err := run([]string{"-definitely-not-a-flag"}); err == nil {
		t.Fatal("want flag parse error")
	}
}
