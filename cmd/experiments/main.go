// Command experiments regenerates every table and figure of the
// paper's evaluation on the synthetic workload.
//
// Usage:
//
//	experiments [-run all|table1,fig8,...] [-scale 0.05] [-seed 1] [-max 150]
//
// -scale 1.0 reproduces the full 11,581-package population (several
// minutes of sanitization, as in the paper's Table 3).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"tsr/internal/experiments"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	runList := fs.String("run", "all", "comma-separated experiment ids, or 'all'")
	scale := fs.Float64("scale", 0.05, "population scale (1.0 = full 11,581 packages)")
	seed := fs.Int64("seed", 1, "workload seed")
	maxPkgs := fs.Int("max", 150, "cap for per-package experiment loops (0 = no cap)")
	benchDir := fs.String("bench-dir", ".", "directory for BENCH_*.json emission (empty disables)")
	tenants := fs.Int("tenants", 0, "tenant repositories for multi-tenant-scale (0 = its default of 100)")
	list := fs.Bool("list", false, "list experiment ids and exit")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *list {
		for _, r := range experiments.All() {
			fmt.Printf("%-16s %s\n", r.ID, r.Paper)
		}
		return nil
	}
	cfg := experiments.Config{Scale: *scale, Seed: *seed, MaxPackages: *maxPkgs, BenchDir: *benchDir, Tenants: *tenants}

	var runners []experiments.Runner
	if *runList == "all" {
		runners = experiments.All()
	} else {
		for _, id := range strings.Split(*runList, ",") {
			r, err := experiments.ByID(strings.TrimSpace(id))
			if err != nil {
				return err
			}
			runners = append(runners, r)
		}
	}
	for _, r := range runners {
		start := time.Now()
		tbl, err := r.Run(cfg)
		if err != nil {
			return fmt.Errorf("%s: %w", r.ID, err)
		}
		fmt.Println(tbl.Render())
		fmt.Printf("(%s completed in %s)\n\n", r.ID, time.Since(start).Round(time.Millisecond))
	}
	return nil
}
