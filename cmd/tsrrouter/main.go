// Command tsrrouter shards tenant repositories across a fleet of tsrd
// origin instances with a consistent-hash ring (internal/ring): every
// repo id hashes to one backend, so each tenant's caches, sealed
// checkpoints, and scheduler history live on exactly one box, and
// adding a backend re-homes only ~1/N of the tenants.
//
// Usage:
//
//	tsrrouter -backends http://tsrd0:8473,http://tsrd1:8473
//	          [-addr :8474] [-replicas 128] [-health-interval 5s]
//	          [-max-inflight 256] [-log-format text|json]
//
// Placement happens at deploy time: POST /policies GENERATES the repo
// id at the router (or honors a caller-supplied ?id=) and forwards the
// deploy to the ring owner with ?id= pinned, so the owner — not the
// backend's own id generator — names the tenant and every later
// request for that id hashes to the same box with no placement table.
//
// All /repos/{id}/... traffic is reverse-proxied to the id's owner.
// When the owner fails its health probe (or a proxied request errors),
// requests re-rank to the next node in ring order — useful for reads
// served from a replica that restored the tenant's checkpoint; writes
// to a non-owner simply 404 until the owner returns, which is the
// honest answer for single-homed tenants.
//
// GET /stats fans out to every backend and returns the per-backend
// service stats keyed by backend URL; GET /ring reports placement and
// health for operators.
package main

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/httputil"
	"net/url"
	"os"
	"os/signal"
	"strings"
	"sync"
	"syscall"
	"time"

	"tsr/internal/obs"
	"tsr/internal/ring"
	"tsr/internal/trace"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "tsrrouter:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("tsrrouter", flag.ContinueOnError)
	addr := fs.String("addr", ":8474", "listen address")
	backends := fs.String("backends", "", "comma-separated tsrd base URLs (required)")
	replicas := fs.Int("replicas", 0, "virtual replicas per backend on the hash ring (0 = default)")
	healthInterval := fs.Duration("health-interval", 5*time.Second, "backend /healthz probe interval (0 disables probing)")
	maxInflight := fs.Int64("max-inflight", 256, "admission control: max concurrently served requests (0 = unlimited)")
	logFormat := fs.String("log-format", "text", "operational log format: text or json")
	if err := fs.Parse(args); err != nil {
		return err
	}
	log, err := obs.NewLogger(os.Stderr, *logFormat, "tsrrouter")
	if err != nil {
		return err
	}
	rt, err := newRouter(strings.Split(*backends, ","), *replicas, log)
	if err != nil {
		return err
	}
	if *healthInterval > 0 {
		go rt.healthLoop(ctx, *healthInterval)
	}
	tracer := trace.NewTracer(trace.Config{Tier: "router"})
	server := &http.Server{
		Addr:              *addr,
		Handler:           obs.New(obs.Options{MaxInflight: *maxInflight, Tracer: tracer}).Wrap(rt.handler()),
		ReadHeaderTimeout: 10 * time.Second,
	}
	log.Info("listening", "addr", *addr, "backends", len(rt.nodes), "max_inflight", *maxInflight)
	return serveUntilDone(ctx, server, log)
}

// serveUntilDone runs the server until it fails or the context is
// canceled, then drains in-flight requests. (Same helper as tsrd and
// tsredge; main packages cannot share code.)
func serveUntilDone(ctx context.Context, server *http.Server, log *slog.Logger) error {
	errCh := make(chan error, 1)
	go func() { errCh <- server.ListenAndServe() }()
	select {
	case err := <-errCh:
		if errors.Is(err, http.ErrServerClosed) {
			return nil
		}
		return err
	case <-ctx.Done():
		log.Info("signal received, draining connections")
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := server.Shutdown(shutdownCtx); err != nil {
			return fmt.Errorf("shutdown: %w", err)
		}
		log.Info("stopped")
		return nil
	}
}

// router is the shared state: the immutable placement ring, one
// reverse proxy per backend, and the mutable health view that re-ranks
// owners.
type router struct {
	ring    *ring.Ring
	nodes   []string // ring node names == normalized backend base URLs
	proxies map[string]*httputil.ReverseProxy
	client  *http.Client // health probes, deploy + stats fan-out
	log     *slog.Logger

	mu   sync.RWMutex
	down map[string]bool
}

// newRouter parses the backend list and builds the ring. Backend URLs
// are normalized (trailing slash stripped) so the ring key, the proxy
// target, and the /stats map key are byte-identical.
func newRouter(backends []string, replicas int, log *slog.Logger) (*router, error) {
	rt := &router{
		proxies: map[string]*httputil.ReverseProxy{},
		client:  &http.Client{Timeout: 2 * time.Minute},
		log:     log,
		down:    map[string]bool{},
	}
	for _, b := range backends {
		b = strings.TrimRight(strings.TrimSpace(b), "/")
		if b == "" {
			continue
		}
		u, err := url.Parse(b)
		if err != nil || u.Scheme == "" || u.Host == "" {
			return nil, fmt.Errorf("backend %q: not an absolute URL", b)
		}
		if _, dup := rt.proxies[b]; dup {
			continue
		}
		node := b
		p := httputil.NewSingleHostReverseProxy(u)
		p.ErrorHandler = func(w http.ResponseWriter, r *http.Request, err error) {
			// A transport failure is the passive health signal: mark the
			// node down so the next request re-ranks without waiting for
			// the probe loop; the probe brings it back.
			rt.setDown(node, true)
			rt.log.Error("proxy to backend failed", "backend", node, "path", r.URL.Path, "err", err)
			httpError(w, http.StatusBadGateway, fmt.Errorf("backend %s unreachable: %w", node, err))
		}
		rt.proxies[node] = p
		rt.nodes = append(rt.nodes, node)
	}
	if len(rt.nodes) == 0 {
		return nil, errors.New("no backends (set -backends http://host:port,...)")
	}
	rt.ring = ring.New(replicas, rt.nodes...)
	rt.nodes = rt.ring.Nodes()
	return rt, nil
}

func (rt *router) setDown(node string, down bool) {
	rt.mu.Lock()
	was := rt.down[node]
	if down {
		rt.down[node] = true
	} else {
		delete(rt.down, node)
	}
	rt.mu.Unlock()
	if was != down {
		if down {
			rt.log.Warn("backend down", "backend", node)
		} else {
			rt.log.Info("backend healthy", "backend", node)
		}
	}
}

func (rt *router) isDown(node string) bool {
	rt.mu.RLock()
	defer rt.mu.RUnlock()
	return rt.down[node]
}

// pick returns the backend serving id: the ring owner, re-ranked past
// unhealthy nodes in ring order. With every candidate down it returns
// the true owner — the request fails loudly at the proxy rather than
// silently at a node that never held the tenant.
func (rt *router) pick(id string) string {
	owners := rt.ring.Owners(id, len(rt.nodes))
	for _, node := range owners {
		if !rt.isDown(node) {
			return node
		}
	}
	return owners[0]
}

// healthLoop probes every backend's /healthz on the interval.
func (rt *router) healthLoop(ctx context.Context, every time.Duration) {
	ticker := time.NewTicker(every)
	defer ticker.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-ticker.C:
			rt.probeAll(ctx)
		}
	}
}

// probeAll checks every backend once, concurrently.
func (rt *router) probeAll(ctx context.Context) {
	var wg sync.WaitGroup
	for _, node := range rt.nodes {
		wg.Add(1)
		go func(node string) {
			defer wg.Done()
			rt.setDown(node, !rt.probe(ctx, node))
		}(node)
	}
	wg.Wait()
}

func (rt *router) probe(ctx context.Context, node string) bool {
	ctx, cancel := context.WithTimeout(ctx, 5*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, node+"/healthz", nil)
	if err != nil {
		return false
	}
	resp, err := rt.client.Do(req)
	if err != nil {
		return false
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return resp.StatusCode == http.StatusOK
}

// maxPolicyBytes caps POST /policies bodies, mirroring the origin's
// own cap so the router never buffers more than the backend accepts.
const maxPolicyBytes = 10 << 20

func (rt *router) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /policies", rt.deploy)
	mux.HandleFunc("/repos/{id}/", rt.proxyRepo)
	mux.HandleFunc("/repos/{id}", rt.proxyRepo)
	mux.HandleFunc("GET /stats", rt.stats)
	mux.HandleFunc("GET /ring", rt.ringInfo)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, map[string]string{"status": "ok"})
	})
	return mux
}

// deploy places a new tenant: the router names the repository (or
// honors a well-formed caller ?id=), hashes it to its owner, and
// forwards the deploy there with ?id= pinned. The response streams
// back verbatim — it is the OWNER's attestation report and public key,
// which the client verifies end-to-end; the router adds the placement
// in an X-Tsr-Backend header without touching the body.
func (rt *router) deploy(w http.ResponseWriter, r *http.Request) {
	//lint:allow streamserve policy upload, bounded by maxPolicyBytes; not a package body
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxPolicyBytes))
	if err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			httpError(w, http.StatusRequestEntityTooLarge,
				fmt.Errorf("policy body exceeds %d bytes", tooBig.Limit))
			return
		}
		httpError(w, http.StatusBadRequest, err)
		return
	}
	id := r.URL.Query().Get("id")
	if id == "" {
		id, err = newRepoID()
		if err != nil {
			httpError(w, http.StatusInternalServerError, err)
			return
		}
	}
	node := rt.pick(id)
	req, err := http.NewRequestWithContext(r.Context(), http.MethodPost,
		node+"/policies?id="+url.QueryEscape(id), strings.NewReader(string(body)))
	if err != nil {
		httpError(w, http.StatusInternalServerError, err)
		return
	}
	req.Header.Set("Content-Type", r.Header.Get("Content-Type"))
	resp, err := rt.client.Do(req)
	if err != nil {
		rt.setDown(node, true)
		httpError(w, http.StatusBadGateway, fmt.Errorf("deploy to %s: %w", node, err))
		return
	}
	defer resp.Body.Close()
	w.Header().Set("Content-Type", resp.Header.Get("Content-Type"))
	w.Header().Set("X-Tsr-Backend", node)
	//lint:allow statusroute proxy relays the backend's own status verbatim; there is no router-side error to classify
	w.WriteHeader(resp.StatusCode)
	io.Copy(w, resp.Body)
}

// newRepoID draws a fresh repository id in the service's id alphabet
// ("r" + 16 hex digits).
func newRepoID() (string, error) {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "", err
	}
	return "r" + hex.EncodeToString(b[:]), nil
}

// proxyRepo forwards any /repos/{id}/... request to the id's backend.
func (rt *router) proxyRepo(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if id == "" {
		httpError(w, http.StatusNotFound, errors.New("missing repository id"))
		return
	}
	node := rt.pick(id)
	w.Header().Set("X-Tsr-Backend", node)
	rt.proxies[node].ServeHTTP(w, r)
}

// stats fans GET /stats out to every backend and returns the raw
// per-backend documents keyed by backend URL, with unreachable
// backends listed separately — the fleet-wide view of the per-service
// tenant totals and scheduler snapshots.
func (rt *router) stats(w http.ResponseWriter, r *http.Request) {
	type result struct {
		node string
		doc  json.RawMessage
		err  error
	}
	results := make([]result, len(rt.nodes))
	var wg sync.WaitGroup
	for i, node := range rt.nodes {
		wg.Add(1)
		go func(i int, node string) {
			defer wg.Done()
			results[i] = result{node: node, err: errors.New("unreachable")}
			req, err := http.NewRequestWithContext(r.Context(), http.MethodGet, node+"/stats", nil)
			if err != nil {
				results[i].err = err
				return
			}
			resp, err := rt.client.Do(req)
			if err != nil {
				results[i].err = err
				return
			}
			defer resp.Body.Close()
			//lint:allow streamserve stats fan-out, small JSON documents; not a package body
			doc, err := io.ReadAll(io.LimitReader(resp.Body, 16<<20))
			if err != nil || resp.StatusCode != http.StatusOK {
				results[i].err = fmt.Errorf("HTTP %d from %s", resp.StatusCode, node)
				return
			}
			results[i] = result{node: node, doc: doc}
		}(i, node)
	}
	wg.Wait()
	doc := struct {
		Backends    map[string]json.RawMessage `json:"backends"`
		Unreachable map[string]string          `json:"unreachable,omitempty"`
	}{Backends: map[string]json.RawMessage{}}
	for _, res := range results {
		if res.err != nil {
			if doc.Unreachable == nil {
				doc.Unreachable = map[string]string{}
			}
			doc.Unreachable[res.node] = res.err.Error()
			continue
		}
		doc.Backends[res.node] = res.doc
	}
	writeJSON(w, doc)
}

// ringInfo reports placement for operators: the node list with health,
// and — with ?id= — the failover ranking for one repository.
func (rt *router) ringInfo(w http.ResponseWriter, r *http.Request) {
	type nodeInfo struct {
		Node    string `json:"node"`
		Healthy bool   `json:"healthy"`
	}
	doc := struct {
		Nodes  []nodeInfo `json:"nodes"`
		Owners []string   `json:"owners,omitempty"`
	}{}
	for _, n := range rt.nodes {
		doc.Nodes = append(doc.Nodes, nodeInfo{Node: n, Healthy: !rt.isDown(n)})
	}
	if id := r.URL.Query().Get("id"); id != "" {
		doc.Owners = rt.ring.Owners(id, len(rt.nodes))
	}
	writeJSON(w, doc)
}

// httpError writes a JSON error response (the same convention every
// daemon in this repo uses).
func httpError(w http.ResponseWriter, code int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(v)
}
