package main

import (
	"context"
	"encoding/json"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"net/url"
	"regexp"
	"strings"
	"sync/atomic"
	"testing"

	"tsr/internal/obs"
)

func testLogger() *slog.Logger {
	log, err := obs.NewLogger(io.Discard, "text", "tsrrouter-test")
	if err != nil {
		panic(err)
	}
	return log
}

// stubBackend is a minimal tsrd stand-in that records what reaches it.
type stubBackend struct {
	srv      *httptest.Server
	name     string
	deploys  atomic.Int64
	indexes  atomic.Int64
	lastID   atomic.Value // string: last ?id= seen on /policies
	healthOK atomic.Bool
}

func newStubBackend(name string) *stubBackend {
	b := &stubBackend{name: name}
	b.healthOK.Store(true)
	mux := http.NewServeMux()
	mux.HandleFunc("POST /policies", func(w http.ResponseWriter, r *http.Request) {
		b.deploys.Add(1)
		b.lastID.Store(r.URL.Query().Get("id"))
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(map[string]string{
			"repository_id": r.URL.Query().Get("id"), "backend": name,
		})
	})
	mux.HandleFunc("GET /repos/{id}/index", func(w http.ResponseWriter, r *http.Request) {
		b.indexes.Add(1)
		_, _ = w.Write([]byte("index-from-" + name))
	})
	mux.HandleFunc("GET /stats", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(map[string]string{"backend": name})
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		if !b.healthOK.Load() {
			httpError(w, http.StatusServiceUnavailable, io.ErrUnexpectedEOF)
			return
		}
		_, _ = w.Write([]byte("ok"))
	})
	b.srv = httptest.NewServer(mux)
	return b
}

// twoBackendRouter builds a router over two live stubs.
func twoBackendRouter(t *testing.T) (*router, *stubBackend, *stubBackend) {
	t.Helper()
	a, b := newStubBackend("a"), newStubBackend("b")
	t.Cleanup(a.srv.Close)
	t.Cleanup(b.srv.Close)
	rt, err := newRouter([]string{a.srv.URL, b.srv.URL}, 0, testLogger())
	if err != nil {
		t.Fatal(err)
	}
	return rt, a, b
}

// byURL maps a node name back to its stub.
func byURL(a, b *stubBackend, node string) *stubBackend {
	if node == a.srv.URL {
		return a
	}
	return b
}

func TestNewRouterValidation(t *testing.T) {
	if _, err := newRouter([]string{""}, 0, testLogger()); err == nil {
		t.Fatal("want error for empty backend list")
	}
	if _, err := newRouter([]string{"not a url"}, 0, testLogger()); err == nil {
		t.Fatal("want error for relative backend URL")
	}
}

// TestDeployPlacement: the router names the tenant, forwards the
// deploy to the ring owner with ?id= pinned, and tags the response
// with the placement.
func TestDeployPlacement(t *testing.T) {
	rt, a, b := twoBackendRouter(t)
	h := rt.handler()

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/policies", strings.NewReader("mirrors: []")))
	if rec.Code != http.StatusOK {
		t.Fatalf("deploy status = %d: %s", rec.Code, rec.Body)
	}
	var resp struct {
		RepositoryID string `json:"repository_id"`
		Backend      string `json:"backend"`
	}
	if err := json.NewDecoder(rec.Body).Decode(&resp); err != nil {
		t.Fatal(err)
	}
	if !regexp.MustCompile(`^r[0-9a-f]{16}$`).MatchString(resp.RepositoryID) {
		t.Fatalf("router generated id %q, want r + 16 hex digits", resp.RepositoryID)
	}
	owner := rt.ring.Owner(resp.RepositoryID)
	if got := rec.Header().Get("X-Tsr-Backend"); got != owner {
		t.Fatalf("X-Tsr-Backend = %s, ring owner = %s", got, owner)
	}
	served := byURL(a, b, owner)
	if served.deploys.Load() != 1 || served.lastID.Load().(string) != resp.RepositoryID {
		t.Fatalf("owner %s saw deploys=%d lastID=%v, want the pinned id %s",
			served.name, served.deploys.Load(), served.lastID.Load(), resp.RepositoryID)
	}

	// A caller-chosen ?id= is honored verbatim.
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodPost,
		"/policies?id=rfeedfacefeedface", strings.NewReader("mirrors: []")))
	if rec.Code != http.StatusOK {
		t.Fatalf("deploy status = %d", rec.Code)
	}
	pinnedOwner := byURL(a, b, rt.ring.Owner("rfeedfacefeedface"))
	if pinnedOwner.lastID.Load().(string) != "rfeedfacefeedface" {
		t.Fatalf("pinned id not forwarded to its owner %s", pinnedOwner.name)
	}
}

// TestProxyAndFailover: /repos/{id}/... goes to the ring owner; when
// the owner is down it re-ranks to the next node in ring order, and
// recovers when the owner comes back.
func TestProxyAndFailover(t *testing.T) {
	rt, a, b := twoBackendRouter(t)
	h := rt.handler()
	const id = "r0123456789abcdef"
	owners := rt.ring.Owners(id, 2)
	first, second := byURL(a, b, owners[0]), byURL(a, b, owners[1])

	get := func() (string, string) {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/repos/"+id+"/index", nil))
		if rec.Code != http.StatusOK {
			t.Fatalf("index status = %d", rec.Code)
		}
		return rec.Body.String(), rec.Header().Get("X-Tsr-Backend")
	}

	body, backend := get()
	if body != "index-from-"+first.name || backend != owners[0] {
		t.Fatalf("healthy routing: got %q via %s, want owner %s", body, backend, owners[0])
	}
	rt.setDown(owners[0], true)
	if body, backend = get(); body != "index-from-"+second.name || backend != owners[1] {
		t.Fatalf("failover: got %q via %s, want next owner %s", body, backend, owners[1])
	}
	rt.setDown(owners[0], false)
	if body, _ = get(); body != "index-from-"+first.name {
		t.Fatalf("recovery: got %q, want owner %s again", body, first.name)
	}
}

// TestProxyErrorMarksDown: a dead backend 502s once and is marked down
// by the proxy's error handler, so the next request fails over without
// waiting for a probe.
func TestProxyErrorMarksDown(t *testing.T) {
	rt, a, b := twoBackendRouter(t)
	h := rt.handler()
	const id = "r0123456789abcdef"
	owners := rt.ring.Owners(id, 2)
	byURL(a, b, owners[0]).srv.Close() // kill the owner

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/repos/"+id+"/index", nil))
	if rec.Code != http.StatusBadGateway {
		t.Fatalf("dead owner status = %d, want 502", rec.Code)
	}
	if !rt.isDown(owners[0]) {
		t.Fatal("proxy error did not mark the backend down")
	}
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/repos/"+id+"/index", nil))
	if rec.Code != http.StatusOK || rec.Header().Get("X-Tsr-Backend") != owners[1] {
		t.Fatalf("after passive detection: status %d via %s, want 200 via %s",
			rec.Code, rec.Header().Get("X-Tsr-Backend"), owners[1])
	}
}

// TestHealthProbe: probeAll flips backends down on failing /healthz
// and back up on recovery.
func TestHealthProbe(t *testing.T) {
	rt, a, _ := twoBackendRouter(t)
	a.healthOK.Store(false)
	rt.probeAll(context.Background())
	if !rt.isDown(a.srv.URL) {
		t.Fatal("failing probe did not mark backend down")
	}
	a.healthOK.Store(true)
	rt.probeAll(context.Background())
	if rt.isDown(a.srv.URL) {
		t.Fatal("passing probe did not bring backend back")
	}
}

// TestStatsFanOut: GET /stats aggregates every backend's document
// keyed by backend URL, and reports unreachable backends separately.
func TestStatsFanOut(t *testing.T) {
	rt, a, b := twoBackendRouter(t)
	h := rt.handler()
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/stats", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("stats status = %d", rec.Code)
	}
	var doc struct {
		Backends    map[string]json.RawMessage `json:"backends"`
		Unreachable map[string]string          `json:"unreachable"`
	}
	if err := json.NewDecoder(rec.Body).Decode(&doc); err != nil {
		t.Fatal(err)
	}
	if len(doc.Backends) != 2 || doc.Backends[a.srv.URL] == nil || doc.Backends[b.srv.URL] == nil {
		t.Fatalf("backends = %v, want both stubs", doc.Backends)
	}

	b.srv.Close()
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/stats", nil))
	doc.Backends, doc.Unreachable = nil, nil
	if err := json.NewDecoder(rec.Body).Decode(&doc); err != nil {
		t.Fatal(err)
	}
	if len(doc.Backends) != 1 || doc.Backends[a.srv.URL] == nil {
		t.Fatalf("backends = %v, want only the live stub", doc.Backends)
	}
	if _, ok := doc.Unreachable[b.srv.URL]; !ok {
		t.Fatalf("unreachable = %v, want the dead stub listed", doc.Unreachable)
	}
}

// TestRingInfo: the operator view lists every node with health and
// ranks owners for a queried id.
func TestRingInfo(t *testing.T) {
	rt, _, _ := twoBackendRouter(t)
	h := rt.handler()
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet,
		"/ring?id="+url.QueryEscape("r0123456789abcdef"), nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("ring status = %d", rec.Code)
	}
	var doc struct {
		Nodes []struct {
			Node    string `json:"node"`
			Healthy bool   `json:"healthy"`
		} `json:"nodes"`
		Owners []string `json:"owners"`
	}
	if err := json.NewDecoder(rec.Body).Decode(&doc); err != nil {
		t.Fatal(err)
	}
	if len(doc.Nodes) != 2 || !doc.Nodes[0].Healthy || !doc.Nodes[1].Healthy {
		t.Fatalf("nodes = %v", doc.Nodes)
	}
	if len(doc.Owners) != 2 || doc.Owners[0] != rt.ring.Owner("r0123456789abcdef") {
		t.Fatalf("owners = %v", doc.Owners)
	}
}

func TestRunBadFlag(t *testing.T) {
	if err := run(context.Background(), []string{"-nope"}); err == nil {
		t.Fatal("want flag error")
	}
	if err := run(context.Background(), nil); err == nil {
		t.Fatal("want error without -backends")
	}
}
