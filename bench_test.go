// Package tsrbench hosts the benchmark harness: one benchmark per table
// and figure of the paper's evaluation (driving the experiment harness
// at a reduced scale), one per DESIGN.md ablation, plus micro-benchmarks
// of the core operations (sanitization, package codec, signatures,
// quorum reads).
//
// Regenerate the paper-shaped tables at higher scale with:
//
//	go run ./cmd/experiments -scale 1.0
package tsrbench

import (
	"context"
	"fmt"
	"os"
	"testing"
	"time"

	"tsr/internal/apk"
	"tsr/internal/enclave"
	"tsr/internal/experiments"
	"tsr/internal/index"
	"tsr/internal/keys"
	"tsr/internal/sanitize"
	"tsr/internal/stats"
	"tsr/internal/trace"
	"tsr/internal/workload"
)

// benchScale keeps each experiment benchmark in the ~1s range.
const benchScale = 0.008

func benchCfg() experiments.Config {
	return experiments.Config{Scale: benchScale, Seed: 1, MaxPackages: 25, QuorumTrials: 3}
}

// runExperiment runs one registered experiment b.N times.
func runExperiment(b *testing.B, id string) {
	b.Helper()
	runner, err := experiments.ByID(id)
	if err != nil {
		b.Fatal(err)
	}
	cfg := benchCfg()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := runner.Run(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// --- one benchmark per paper table/figure ------------------------------

func BenchmarkTable1ScriptCensus(b *testing.B)     { runExperiment(b, "table1") }
func BenchmarkTable2ScriptOperations(b *testing.B) { runExperiment(b, "table2") }
func BenchmarkTable3RepoInit(b *testing.B)         { runExperiment(b, "table3") }
func BenchmarkTable4Correlations(b *testing.B)     { runExperiment(b, "table4") }
func BenchmarkFig8SanitizationTime(b *testing.B)   { runExperiment(b, "fig8") }
func BenchmarkFig9SizeOverhead(b *testing.B)       { runExperiment(b, "fig9") }
func BenchmarkFig10CacheLatency(b *testing.B)      { runExperiment(b, "fig10") }
func BenchmarkFig11EndToEnd(b *testing.B)          { runExperiment(b, "fig11") }
func BenchmarkFig12SGXOverhead(b *testing.B)       { runExperiment(b, "fig12") }
func BenchmarkFig13QuorumLatency(b *testing.B)     { runExperiment(b, "fig13") }

// --- ablations ----------------------------------------------------------

func BenchmarkAblationEPCSize(b *testing.B) { runExperiment(b, "ablation-epc") }

func BenchmarkAblationQuorumStrategy(b *testing.B) { runExperiment(b, "ablation-quorum") }

func BenchmarkAblationParallelDownload(b *testing.B) {
	runner, err := experiments.ByID("ablation-parallel")
	if err != nil {
		b.Fatal(err)
	}
	cfg := benchCfg()
	cfg.Scale = 0.004
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := runner.Run(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationRefreshWorkers(b *testing.B) {
	runner, err := experiments.ByID("ablation-workers")
	if err != nil {
		b.Fatal(err)
	}
	cfg := benchCfg()
	cfg.Scale = 0.004
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := runner.Run(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEdgeFanout measures the edge replication tier: aggregate
// client fetch throughput (modeled, over clients on five continents)
// and the origin request reduction at 1, 4, and 16 warm replicas.
// Reported metrics per sub-benchmark: pkg/s (aggregate throughput),
// %absorbed (share of warm package requests the edges served without
// contacting the origin), and origin-pulls (absolute origin package
// fetches during the measured pass).
func BenchmarkEdgeFanout(b *testing.B) {
	for _, replicas := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("replicas=%d", replicas), func(b *testing.B) {
			cfg := benchCfg()
			cfg.Scale = 0.004
			for i := 0; i < b.N; i++ {
				res, err := experiments.EdgeFanoutRun(cfg, replicas)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(res.Throughput, "pkg/s")
				b.ReportMetric(res.Absorption*100, "%absorbed")
				b.ReportMetric(float64(res.OriginPackagePulls), "origin-pulls")
			}
		})
	}
}

// BenchmarkFlashCrowd measures the serving path under correlated load:
// 64 clients concurrently requesting the same cold package through an
// edge replica must produce exactly one origin pull (seed behavior: 64),
// one origin re-sanitization fill, and one delta fetch per sync storm;
// under 2x max-inflight offered load the admission controller sheds the
// excess with 429s while the served p99 stays near the uncontended p99.
func BenchmarkFlashCrowd(b *testing.B) {
	cfg := benchCfg()
	cfg.Scale = 0.004
	for i := 0; i < b.N; i++ {
		res, err := experiments.FlashCrowdRun(cfg, 64)
		if err != nil {
			b.Fatal(err)
		}
		if res.EdgeOriginPulls != 1 {
			b.Fatalf("%d origin pulls for %d concurrent cold misses, want exactly 1", res.EdgeOriginPulls, res.Clients)
		}
		if res.Shed == 0 {
			b.Fatal("overload phase shed nothing; admission control inactive")
		}
		b.ReportMetric(float64(res.EdgeOriginPulls), "origin-pulls")
		b.ReportMetric(float64(res.EdgeCoalesced), "coalesced")
		b.ReportMetric(float64(res.OriginFills), "origin-fills")
		b.ReportMetric(float64(res.SyncFetches), "sync-fetches")
		b.ReportMetric(float64(res.Shed), "shed")
		b.ReportMetric(res.UncontendedP99Ms, "p99-ms")
		b.ReportMetric(res.OverloadP99Ms, "overload-p99-ms")
	}
}

// BenchmarkFleetSoak runs the composed-failure soak (docs/SOAK.md) at
// bench scale: diurnal client traffic through failover clients while
// edges die, restart, roll back, and turn byzantine, the origin
// crash-restarts from its data dir, and flash crowds hit the admission
// gate. Any invariant violation fails the benchmark. Reported metrics:
// read p99s, shed rate, composed failure count, and the origin's warm
// restart time.
func BenchmarkFleetSoak(b *testing.B) {
	cfg := benchCfg()
	cfg.Scale = 0.004
	// Seed 3 like the CI soak-smoke job: seed 1 draws a workload with a
	// multi-megabyte tail package that turns the soak's package reads
	// into a 100s bench iteration without exercising anything extra.
	cfg.Seed = 3
	for i := 0; i < b.N; i++ {
		res, err := experiments.FleetSoakRun(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if res.InvariantViolations != 0 {
			b.Fatalf("%d invariant violations: %v", res.InvariantViolations, res.Violations)
		}
		if res.ComposedFailures < 5 {
			b.Fatalf("only %d composed failures scheduled, want >= 5", res.ComposedFailures)
		}
		b.ReportMetric(res.IndexLatency.P99Ms, "idx-p99-ms")
		b.ReportMetric(res.PackageLatency.P99Ms, "pkg-p99-ms")
		b.ReportMetric(res.ShedRate*100, "%shed")
		b.ReportMetric(float64(res.ComposedFailures), "failures")
		b.ReportMetric(res.WarmRestartMs, "warm-restart-ms")
	}
}

// BenchmarkWireSync measures the wire-efficiency work over real HTTP:
// gzip-negotiated index transfer (must be <= 0.5x the identity bytes,
// with the signature headers byte-identical) and chunked differential
// package sync (a one-file version bump must move >= 5x fewer bytes
// than a full refetch). Reported metrics: the gzip ratio, the diff
// reduction factor, and the absolute bytes each path moved. Set
// BENCH_DIR to also emit BENCH_wire_sync.json.
func BenchmarkWireSync(b *testing.B) {
	cfg := benchCfg()
	cfg.Scale = 0.004
	for i := 0; i < b.N; i++ {
		res, err := experiments.WireSyncRun(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if res.IndexGzipRatio > 0.5 {
			b.Fatalf("gzip index is %.2fx the identity bytes, want <= 0.5x", res.IndexGzipRatio)
		}
		if !res.IndexHeadersIdentical {
			b.Fatal("gzip transfer changed the index signature headers")
		}
		if res.DiffReductionX < 5 {
			b.Fatalf("version-bump sync moved %d of %d bytes (%.1fx), want >= 5x reduction",
				res.BumpDiffBytes, res.FullRefetchBytes, res.DiffReductionX)
		}
		if dir := os.Getenv("BENCH_DIR"); dir != "" {
			if _, err := res.WriteBench(dir); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(res.IndexGzipRatio, "gzip-ratio")
		b.ReportMetric(res.DiffReductionX, "diff-reduction-x")
		b.ReportMetric(float64(res.BumpDiffBytes), "diff-bytes")
		b.ReportMetric(float64(res.FullRefetchBytes), "full-bytes")
	}
}

// --- refresh pipeline ----------------------------------------------------

// refreshWorld builds one simulated deployment shared by the refresh
// benchmarks (the initial tenant is refreshed during construction).
func refreshWorld(b *testing.B, scale float64) *experiments.World {
	b.Helper()
	w, err := experiments.NewWorld(experiments.Config{Scale: scale, Seed: 1}, nil, false)
	if err != nil {
		b.Fatal(err)
	}
	return w
}

// BenchmarkRefreshParallel measures a cold repository refresh (download
// + plan + sanitize + sign) at several pipeline widths. Each iteration
// deploys a fresh tenant (isolated caches) outside the timer, so the
// timed region is exactly one full refresh cycle.
func BenchmarkRefreshParallel(b *testing.B) {
	w := refreshWorld(b, 0.006)
	for _, workers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				id, _, _, err := w.Service.DeployPolicy(w.PolicyRaw)
				if err != nil {
					b.Fatal(err)
				}
				tenant, err := w.Service.Repo(id)
				if err != nil {
					b.Fatal(err)
				}
				tenant.SetWorkers(workers)
				b.StartTimer()
				stats, err := tenant.Refresh()
				if err != nil {
					b.Fatal(err)
				}
				if stats.Sanitized == 0 {
					b.Fatal("cold refresh sanitized nothing")
				}
			}
		})
	}
}

// BenchmarkRefreshWarmCache measures a refresh over an unchanged
// upstream: every package is answered by the content-addressed
// sanitization cache and nothing is re-sanitized.
func BenchmarkRefreshWarmCache(b *testing.B) {
	w := refreshWorld(b, 0.006)
	w.Tenant.SetWorkers(4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		stats, err := w.Tenant.Refresh()
		if err != nil {
			b.Fatal(err)
		}
		if stats.Sanitized != 0 {
			b.Fatalf("warm refresh sanitized %d packages", stats.Sanitized)
		}
	}
}

// BenchmarkRefreshForcedReplan measures the forced-replan path: the
// plan is rebuilt from the script cache each iteration, but the
// unchanged plan hash turns the whole population into cache hits.
func BenchmarkRefreshForcedReplan(b *testing.B) {
	w := refreshWorld(b, 0.006)
	w.Tenant.SetWorkers(4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.Tenant.ForceReplan()
		stats, err := w.Tenant.Refresh()
		if err != nil {
			b.Fatal(err)
		}
		if stats.Sanitized != 0 || stats.CacheHits == 0 {
			b.Fatalf("forced replan stats = %+v", stats)
		}
	}
}

// BenchmarkConcurrentReads measures read-tier latency while a cold
// refresh runs: each iteration publishes a plan-invalidating package
// (forcing a full re-sanitization cycle), starts the refresh in the
// background, and hammers FetchIndex/FetchPackage until it publishes.
// Reported metrics are the p50/p99 of the index reads issued during the
// refresh — served lock-free from the previous snapshot, they stay in
// the microsecond range while the pipeline grinds for seconds.
func BenchmarkConcurrentReads(b *testing.B) {
	w := refreshWorld(b, 0.004)
	w.Tenant.SetWorkers(4)
	signed, err := w.Tenant.FetchIndex()
	if err != nil {
		b.Fatal(err)
	}
	ix, err := index.Decode(signed.Raw)
	if err != nil {
		b.Fatal(err)
	}
	if len(ix.Entries) == 0 {
		b.Fatal("served index is empty")
	}
	probe := ix.Entries[0].Name
	// Hammer through the traced entry points at production sampling
	// defaults: the read-tier latency this benchmark reports is the
	// latency clients see with the span layer in the path.
	tctx := trace.NewContext(context.Background(), trace.NewTracer(trace.Config{Tier: "origin"}))

	var idxLat, pkgLat []float64 // milliseconds, during-refresh only
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		// A fresh account name changes the sanitization plan hash, so
		// the refresh re-sanitizes the whole population.
		p := &apk.Package{
			Name: "bench-acct", Version: fmt.Sprintf("1.%d-r0", i),
			Files:   []apk.File{{Path: "/usr/bin/bench-acct", Mode: 0o755, Content: []byte("bench")}},
			Scripts: map[string]string{"post-install": fmt.Sprintf("adduser -S acct%d\n", i)},
		}
		if err := apk.Sign(p, w.Distro); err != nil {
			b.Fatal(err)
		}
		if err := w.Repo.Publish(p); err != nil {
			b.Fatal(err)
		}
		for _, m := range w.Mirrors {
			m.Sync(w.Repo)
		}
		b.StartTimer()
		done := make(chan error, 1)
		go func() {
			_, err := w.Tenant.RefreshCtx(tctx)
			done <- err
		}()
	sample:
		for {
			select {
			case err := <-done:
				if err != nil {
					b.Fatal(err)
				}
				break sample
			default:
			}
			t0 := time.Now()
			if _, _, err := w.Tenant.FetchIndexTaggedCtx(tctx); err != nil {
				b.Fatal(err)
			}
			idxLat = append(idxLat, float64(time.Since(t0))/float64(time.Millisecond))
			t0 = time.Now()
			if _, err := w.Tenant.FetchPackageCtx(tctx, probe); err != nil {
				b.Fatal(err)
			}
			pkgLat = append(pkgLat, float64(time.Since(t0))/float64(time.Millisecond))
		}
	}
	b.StopTimer()
	if len(idxLat) > 0 {
		b.ReportMetric(stats.MustPercentile(idxLat, 50), "idx-p50-ms")
		b.ReportMetric(stats.MustPercentile(idxLat, 99), "idx-p99-ms")
	}
	if len(pkgLat) > 0 {
		b.ReportMetric(stats.MustPercentile(pkgLat, 50), "pkg-p50-ms")
		b.ReportMetric(stats.MustPercentile(pkgLat, 99), "pkg-p99-ms")
	}
}

// --- micro-benchmarks ----------------------------------------------------

// benchSanitizer builds a sanitizer and an encoded package of the given
// content size and file count.
func benchSanitizer(b *testing.B, files int, size int64) (*sanitize.Sanitizer, []byte) {
	b.Helper()
	signer := keys.Shared.MustGet("bench-distro")
	tsrKey := keys.Shared.MustGet("bench-tsr")
	p := &apk.Package{Name: "bench", Version: "1.0-r0"}
	per := size / int64(files)
	for i := 0; i < files; i++ {
		content := make([]byte, per)
		for j := range content {
			content[j] = byte(i * j)
		}
		p.Files = append(p.Files, apk.File{
			Path: fmt.Sprintf("/usr/lib/bench/f%04d", i), Mode: 0o644, Content: content,
		})
	}
	p.Scripts = map[string]string{"post-install": "addgroup -S bench\nadduser -S -G bench bench\n"}
	if err := apk.Sign(p, signer); err != nil {
		b.Fatal(err)
	}
	raw, err := apk.Encode(p)
	if err != nil {
		b.Fatal(err)
	}
	plan, err := sanitize.BuildPlan(&sanitize.SliceSource{Packages: []*apk.Package{p}}, nil, tsrKey)
	if err != nil {
		b.Fatal(err)
	}
	return &sanitize.Sanitizer{
		Plan:      plan,
		TrustRing: keys.NewRing(signer.Public()),
		SignKey:   tsrKey,
		EPC:       enclave.DefaultCostModel(),
	}, raw
}

func BenchmarkSanitizeSmallPackage(b *testing.B) {
	san, raw := benchSanitizer(b, 4, 32<<10)
	b.SetBytes(int64(len(raw)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := san.Sanitize(raw); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSanitizeManyFiles(b *testing.B) {
	san, raw := benchSanitizer(b, 128, 256<<10)
	b.SetBytes(int64(len(raw)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := san.Sanitize(raw); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSanitizeLargePackage(b *testing.B) {
	san, raw := benchSanitizer(b, 8, 8<<20)
	b.SetBytes(int64(len(raw)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := san.Sanitize(raw); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPackageEncodeDecode(b *testing.B) {
	gen := workload.New(workload.Config{Seed: 1, Scale: 0.002})
	p, err := gen.Build(gen.Specs()[0])
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		raw, err := apk.Encode(p)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := apk.Decode(raw); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSignFileDigest(b *testing.B) {
	signer := keys.Shared.MustGet("bench-distro")
	content := make([]byte, 64<<10)
	b.SetBytes(int64(len(content)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := signer.Sign(content); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkVerifySignature(b *testing.B) {
	signer := keys.Shared.MustGet("bench-distro")
	content := make([]byte, 64<<10)
	sig, err := signer.Sign(content)
	if err != nil {
		b.Fatal(err)
	}
	pub := signer.Public()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := pub.Verify(content, sig); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEnclaveSealUnseal(b *testing.B) {
	platform, err := enclave.NewPlatform(keys.Shared.MustGet("bench-quoting"))
	if err != nil {
		b.Fatal(err)
	}
	enc := platform.Launch(enclave.MeasureCode("bench"))
	data := make([]byte, 32<<10)
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		blob, err := enc.Seal(data)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := enc.Unseal(blob); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSanitizeThroughput reports packages/second over a scaled
// population, the figure behind Table 3's sanitization row.
func BenchmarkSanitizeThroughput(b *testing.B) {
	gen := workload.New(workload.Config{Seed: 1, Scale: 0.004})
	signer := keys.Shared.MustGet("bench-distro")
	tsrKey := keys.Shared.MustGet("bench-tsr")
	type item struct{ raw []byte }
	var items []item
	var pkgs []*apk.Package
	for _, spec := range gen.Specs() {
		if !spec.Category.SupportedByTSR() {
			continue
		}
		p, err := gen.Build(spec)
		if err != nil {
			b.Fatal(err)
		}
		if err := apk.Sign(p, signer); err != nil {
			b.Fatal(err)
		}
		raw, err := apk.Encode(p)
		if err != nil {
			b.Fatal(err)
		}
		pkgs = append(pkgs, p)
		items = append(items, item{raw: raw})
	}
	plan, err := sanitize.BuildPlan(&sanitize.SliceSource{Packages: pkgs}, nil, tsrKey)
	if err != nil {
		b.Fatal(err)
	}
	san := &sanitize.Sanitizer{
		Plan:      plan,
		TrustRing: keys.NewRing(signer.Public()),
		SignKey:   tsrKey,
		EPC:       enclave.DefaultCostModel(),
	}
	b.ResetTimer()
	start := time.Now()
	var count int
	for i := 0; i < b.N; i++ {
		it := items[i%len(items)]
		if _, err := san.Sanitize(it.raw); err != nil {
			b.Fatal(err)
		}
		count++
	}
	elapsed := time.Since(start)
	if elapsed > 0 {
		b.ReportMetric(float64(count)/elapsed.Seconds(), "pkgs/s")
	}
}

// BenchmarkWarmRestart measures the durable store's crash-restart
// path: cold init (policy deploy + full sanitization) versus a warm
// restart over the populated data dir (scrub + unseal + publish).
// Reported metrics: cold_ms, warm_ms, their ratio (the acceptance
// floor is 100x), packages re-sanitized during the restart (must be
// 0), and whether the restarted edge replica resumed via delta sync
// (1.0 = yes, no full index fetch).
func BenchmarkWarmRestart(b *testing.B) {
	cfg := benchCfg()
	cfg.Scale = 0.004
	for i := 0; i < b.N; i++ {
		res, err := experiments.CrashRestartRun(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if res.Resanitized != 0 {
			b.Fatalf("warm restart re-sanitized %d packages", res.Resanitized)
		}
		if !res.RollbackDetected {
			b.Fatal("rolled-back data dir was not rejected")
		}
		b.ReportMetric(float64(res.ColdInit.Milliseconds()), "cold_ms")
		b.ReportMetric(float64(res.WarmRestart.Milliseconds()), "warm_ms")
		b.ReportMetric(res.Speedup, "speedup_x")
		edgeDelta := 0.0
		if res.EdgeResumedDelta {
			edgeDelta = 1.0
		}
		b.ReportMetric(edgeDelta, "edge_delta_resume")
	}
}
